//! Common-subexpression elimination (local value numbering).
//!
//! Within one sequence every instruction is pure (stores happen at the
//! node level after the sequence completes), so structurally identical
//! instructions compute identical values and duplicates can be forwarded
//! to their first occurrence. Both toolchains run the same CSE, so the
//! pass never diverges; it exists for codegen realism and for its effect
//! on the cost model (fewer executed operations at `-O1+`).

use super::{forward_uses, SeqPass};
use crate::ir::{Inst, InstSeq, Operand};
use progen::ast::Precision;
use std::collections::HashMap;

/// The local value-numbering pass.
pub struct Cse;

impl SeqPass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, seq: &mut InstSeq, _prec: Precision) -> u64 {
        // key: debug rendering of the (operand-canonicalized) instruction.
        // f64 bit patterns are embedded so -0.0 and 0.0 stay distinct.
        let mut fired = 0u64;
        let mut seen: HashMap<String, usize> = HashMap::new();
        for idx in 0..seq.insts.len() {
            let key = inst_key(&seq.insts[idx]);
            match seen.get(&key) {
                Some(&first) => {
                    forward_uses(seq, idx, Operand::Inst(first));
                    fired += 1;
                }
                None => {
                    seen.insert(key, idx);
                }
            }
        }
        fired
    }
}

fn operand_key(o: Operand) -> String {
    match o {
        Operand::Inst(i) => format!("i{i}"),
        Operand::Const(c) => format!("c{:016x}", c.to_bits()),
    }
}

fn inst_key(inst: &Inst) -> String {
    // oracle self-test hook: an armed CseDegenerateKey bug drops the
    // operands from binary keys, merging unequal computations
    #[cfg(feature = "oracle-inject")]
    if crate::inject::armed() == crate::inject::InjectedBug::CseDegenerateKey {
        if let Inst::Bin(op, _, _) = inst {
            return format!("bin:{}", op.symbol());
        }
    }
    match inst {
        Inst::ReadVar(v) => format!("rv:{v}"),
        Inst::ReadArr(a, i) => format!("ra:{a}[{i}]"),
        Inst::ReadThreadIdx => "tid".to_string(),
        Inst::Const(c) => format!("k:{:016x}", c.to_bits()),
        Inst::Neg(a) => format!("neg:{}", operand_key(*a)),
        Inst::Rcp(a) => format!("rcp:{}", operand_key(*a)),
        Inst::Bin(op, a, b) => {
            format!("bin:{}:{}:{}", op.symbol(), operand_key(*a), operand_key(*b))
        }
        Inst::Fma(a, b, c) => {
            format!("fma:{}:{}:{}", operand_key(*a), operand_key(*b), operand_key(*c))
        }
        Inst::Fnma(a, b, c) => {
            format!("fnma:{}:{}:{}", operand_key(*a), operand_key(*b), operand_key(*c))
        }
        Inst::Fms(a, b, c) => {
            format!("fms:{}:{}:{}", operand_key(*a), operand_key(*b), operand_key(*c))
        }
        Inst::Call(f, args) => {
            let args: Vec<String> = args.iter().map(|a| operand_key(*a)).collect();
            format!("call:{}:{}", f.c_name(), args.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::mathlib::MathFunc;
    use progen::ast::BinOp;

    #[test]
    fn duplicate_reads_are_merged() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x1 = s.push(Inst::ReadVar("x".into()));
        let x2 = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x1, x2));
        Cse.run(&mut s, Precision::F64);
        assert_eq!(s.insts[2], Inst::Bin(BinOp::Add, Operand::Inst(0), Operand::Inst(0)));
    }

    #[test]
    fn duplicate_calls_are_merged_transitively() {
        // cos(x) + cos(x): reads merge first, then the calls become equal
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x1 = s.push(Inst::ReadVar("x".into()));
        let c1 = s.push(Inst::Call(MathFunc::Cos, vec![x1]));
        let x2 = s.push(Inst::ReadVar("x".into()));
        let c2 = s.push(Inst::Call(MathFunc::Cos, vec![x2]));
        s.result = s.push(Inst::Bin(BinOp::Add, c1, c2));
        Cse.run(&mut s, Precision::F64);
        assert_eq!(s.insts[4], Inst::Bin(BinOp::Add, Operand::Inst(1), Operand::Inst(1)));
    }

    #[test]
    fn different_variables_stay_distinct() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x, y));
        let before = s.clone();
        Cse.run(&mut s, Precision::F64);
        assert_eq!(s, before);
    }

    #[test]
    fn zero_signs_are_not_conflated() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::Const(0.0));
        let b = s.push(Inst::Const(-0.0));
        s.result = s.push(Inst::Bin(BinOp::Div, a, b));
        Cse.run(&mut s, Precision::F64);
        // -0.0 has a different bit pattern: no merge
        assert_eq!(s.insts[2], Inst::Bin(BinOp::Div, Operand::Inst(0), Operand::Inst(1)));
    }

    #[test]
    fn result_operand_is_forwarded() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let _x1 = s.push(Inst::ReadVar("x".into()));
        let x2 = s.push(Inst::ReadVar("x".into()));
        s.result = x2;
        Cse.run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Inst(0));
    }
}
