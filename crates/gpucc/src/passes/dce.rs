//! Dead-code elimination.
//!
//! Removes instructions unreachable from the sequence result and renumbers
//! the survivors. Runs after contraction/CSE to collect the multiplies and
//! duplicates those passes orphaned.

use super::SeqPass;
use crate::ir::{InstSeq, Operand};
use progen::ast::Precision;

/// The dead-code-elimination pass.
pub struct Dce;

impl SeqPass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, seq: &mut InstSeq, _prec: Precision) -> u64 {
        // oracle self-test hook: an armed DceDropNeg bug treats negations
        // as forwardable copies, dropping the sign flip before liveness
        #[cfg(feature = "oracle-inject")]
        if crate::inject::armed() == crate::inject::InjectedBug::DceDropNeg {
            for idx in 0..seq.insts.len() {
                if let crate::ir::Inst::Neg(a) = seq.insts[idx] {
                    super::forward_uses(seq, idx, a);
                }
            }
        }
        let n = seq.insts.len();
        let mut live = vec![false; n];
        // mark backward from the result
        let mut stack: Vec<usize> = Vec::new();
        if let Operand::Inst(i) = seq.result {
            stack.push(i);
        }
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            for o in seq.insts[i].operands() {
                if let Operand::Inst(j) = o {
                    stack.push(j);
                }
            }
        }
        // compact and renumber
        let mut remap = vec![usize::MAX; n];
        let mut kept = Vec::with_capacity(n);
        for (i, inst) in seq.insts.drain(..).enumerate() {
            if live[i] {
                remap[i] = kept.len();
                kept.push(inst);
            }
        }
        for inst in &mut kept {
            inst.map_operands(|o| match o {
                Operand::Inst(i) => Operand::Inst(remap[i]),
                c => c,
            });
        }
        if let Operand::Inst(i) = seq.result {
            seq.result = Operand::Inst(remap[i]);
        }
        let removed = (n - kept.len()) as u64;
        seq.insts = kept;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Inst;
    use progen::ast::BinOp;

    #[test]
    fn removes_orphaned_instructions() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let _dead = s.push(Inst::ReadVar("dead".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x, y));
        Dce.run(&mut s, Precision::F64);
        assert_eq!(s.insts.len(), 3);
        assert_eq!(s.insts[2], Inst::Bin(BinOp::Add, Operand::Inst(0), Operand::Inst(1)));
        assert_eq!(s.result, Operand::Inst(2));
    }

    #[test]
    fn keeps_everything_reachable() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let n = s.push(Inst::Neg(x));
        s.result = s.push(Inst::Bin(BinOp::Mul, x, n));
        let before = s.clone();
        Dce.run(&mut s, Precision::F64);
        assert_eq!(s, before);
    }

    #[test]
    fn const_result_empties_sequence() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let _a = s.push(Inst::ReadVar("x".into()));
        let _b = s.push(Inst::ReadVar("y".into()));
        s.result = Operand::Const(7.0);
        Dce.run(&mut s, Precision::F64);
        assert!(s.insts.is_empty());
        assert_eq!(s.result, Operand::Const(7.0));
    }

    #[test]
    fn diamond_dependencies_survive() {
        // r = (x+x) * (x+x)  [after CSE: one add, used twice]
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let a = s.push(Inst::Bin(BinOp::Add, x, x));
        s.result = s.push(Inst::Bin(BinOp::Mul, a, a));
        Dce.run(&mut s, Precision::F64);
        assert_eq!(s.insts.len(), 3);
    }
}
