//! Finite-math-only simplification (`-ffinite-math-only` +
//! `-fno-signed-zeros`), part of nvcc's `-ffast-math` bundle.
//!
//! The pass applies algebraic identities that are only valid when NaN and
//! Inf never occur:
//!
//! * `x * 0 → 0` (wrong for `Inf * 0 = NaN` and `NaN * 0`)
//! * `x + 0 → x`, `x - 0 → x` (wrong for `-0 + 0` sign, NaN)
//! * `x - x → 0` (wrong for `Inf - Inf = NaN`)
//! * `x / x → 1` (wrong for `0/0`, `Inf/Inf`, NaN)
//!
//! Because `-DHIP_FAST_MATH` does **not** enable finite-math-only (paper
//! §III-D), this pass runs only in the nvcc-like `O3_FM` pipeline — the
//! asymmetry behind the paper's case study 3, where `-Inf` on one platform
//! becomes `-NaN` on the other once optimization is enabled.

use super::SeqPass;
use crate::ir::{Inst, InstSeq, Operand};
use progen::ast::{BinOp, Precision};

/// The finite-math-only simplification pass.
pub struct FiniteMath;

impl SeqPass for FiniteMath {
    fn name(&self) -> &'static str {
        "finite-math"
    }

    fn run(&self, seq: &mut InstSeq, _prec: Precision) -> u64 {
        let mut fired = 0u64;
        for idx in 0..seq.insts.len() {
            let Inst::Bin(op, a, b) = seq.insts[idx] else {
                continue;
            };
            let replacement: Option<Operand> = match op {
                BinOp::Mul if is_zero(a) || is_zero(b) => Some(Operand::Const(0.0)),
                BinOp::Add if is_zero(a) => Some(b),
                BinOp::Add if is_zero(b) => Some(a),
                BinOp::Sub if is_zero(b) => Some(a),
                BinOp::Sub if a == b && matches!(a, Operand::Inst(_)) => Some(Operand::Const(0.0)),
                BinOp::Div if a == b && matches!(a, Operand::Inst(_)) => Some(Operand::Const(1.0)),
                _ => None,
            };
            if let Some(to) = replacement {
                super::forward_uses(seq, idx, to);
                fired += 1;
            }
        }
        fired
    }
}

/// True for a ±0 constant (no-signed-zeros treats them alike).
fn is_zero(o: Operand) -> bool {
    matches!(o, Operand::Const(c) if c == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_becomes_zero() {
        // the unsound one: Inf * 0 would be NaN without fast math
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Mul, x, Operand::Const(0.0)));
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(0.0));
    }

    #[test]
    fn mul_by_negative_zero_also_simplifies() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Mul, Operand::Const(-0.0), x));
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(0.0));
    }

    #[test]
    fn add_zero_forwards_operand() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x, Operand::Const(0.0)));
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s.result, x);
    }

    #[test]
    fn self_subtraction_becomes_zero() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Sub, x, x));
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(0.0));
    }

    #[test]
    fn self_division_becomes_one() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Div, x, x));
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s.result, Operand::Const(1.0));
    }

    #[test]
    fn identical_constants_do_not_trigger_self_rules() {
        // Const(5)/Const(5) is left to const-fold (which is exact anyway)
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        s.result = s.push(Inst::Bin(BinOp::Div, Operand::Const(5.0), Operand::Const(5.0)));
        FiniteMath.run(&mut s, Precision::F64);
        assert!(matches!(s.insts[0], Inst::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn sub_zero_rhs_only() {
        // 0 - x is a negation, not a no-op: must NOT forward x
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Sub, Operand::Const(0.0), x));
        FiniteMath.run(&mut s, Precision::F64);
        assert!(matches!(s.insts[1], Inst::Bin(BinOp::Sub, _, _)));
    }

    #[test]
    fn non_trivial_arithmetic_untouched() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        s.result = s.push(Inst::Bin(BinOp::Mul, x, y));
        let before = s.clone();
        FiniteMath.run(&mut s, Precision::F64);
        assert_eq!(s, before);
    }
}
