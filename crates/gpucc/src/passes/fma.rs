//! FMA contraction.
//!
//! Rewrites `mul + add` pairs into fused multiply-adds. Both simulated
//! toolchains contract at `-O1` and above (and hipcc contracts
//! HIPIFY-converted sources even at `-O0`, its real `-ffp-contract=fast`
//! default), but they differ in **association preference**: when an
//! addition has a single-use multiply on *both* sides — `x*y + u*v` — the
//! nvcc-like compiler fuses the left multiply while the hipcc-like one
//! fuses the right. The unfused side rounds once more than the fused side,
//! so the two binaries produce different last bits for the same source —
//! one of the engines behind the paper's `Num vs Num` counts growing from
//! O0 to O1 (Table V: 353 → 387).

use super::{use_counts, SeqPass};
use crate::ir::{Inst, InstSeq, Operand};
use progen::ast::{BinOp, Precision};

/// Which side a toolchain prefers to fuse when both qualify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FmaPreference {
    /// Fuse the left multiply (nvcc-like).
    LhsFirst,
    /// Fuse the right multiply (hipcc-like).
    RhsFirst,
}

/// The FMA contraction pass.
pub struct FmaContract {
    /// Vendor association preference.
    pub preference: FmaPreference,
    /// Also contract `x*y − c` into a fused multiply-subtract. The
    /// hipcc-like pipeline does (its `-ffp-contract=fast` heritage); the
    /// nvcc-like one restricts itself to additions — a second contraction
    /// asymmetry that fires even when no addition has two multiply sides.
    pub contract_sub: bool,
}

impl SeqPass for FmaContract {
    fn name(&self) -> &'static str {
        "fma-contract"
    }

    fn run(&self, seq: &mut InstSeq, _prec: Precision) -> u64 {
        let mut fired = 0u64;
        let counts = use_counts(seq);
        for idx in 0..seq.insts.len() {
            if self.contract_sub {
                if let Inst::Bin(BinOp::Sub, a, b) = seq.insts[idx] {
                    if let Some((x, y)) = single_use_mul(seq, &counts, a) {
                        seq.insts[idx] = Inst::Fms(x, y, b);
                        fired += 1;
                        continue;
                    }
                    if let Some((x, y)) = single_use_mul(seq, &counts, b) {
                        seq.insts[idx] = Inst::Fnma(x, y, a);
                        fired += 1;
                        continue;
                    }
                }
            }
            let Inst::Bin(BinOp::Add, a, b) = seq.insts[idx] else {
                continue;
            };
            let lhs_mul = single_use_mul(seq, &counts, a);
            let rhs_mul = single_use_mul(seq, &counts, b);
            let fused = match (lhs_mul, rhs_mul, self.preference) {
                (Some((x, y)), _, FmaPreference::LhsFirst) => Some((x, y, b)),
                (_, Some((x, y)), FmaPreference::RhsFirst) => Some((x, y, a)),
                (Some((x, y)), None, FmaPreference::RhsFirst) => Some((x, y, b)),
                (None, Some((x, y)), FmaPreference::LhsFirst) => Some((x, y, a)),
                _ => None,
            };
            if let Some((x, y, addend)) = fused {
                seq.insts[idx] = Inst::Fma(x, y, addend);
                fired += 1;
                // the multiply becomes dead; DCE collects it
            }
        }
        fired
    }
}

/// If `op` refers to a single-use multiply instruction, return its factors.
fn single_use_mul(seq: &InstSeq, counts: &[usize], op: Operand) -> Option<(Operand, Operand)> {
    let Operand::Inst(i) = op else { return None };
    if counts[i] != 1 {
        return None;
    }
    match seq.insts[i] {
        Inst::Bin(BinOp::Mul, x, y) => Some((x, y)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build `x*y + u*v`.
    fn both_sides_mul() -> InstSeq {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        let m1 = s.push(Inst::Bin(BinOp::Mul, x, y));
        let u = s.push(Inst::ReadVar("u".into()));
        let v = s.push(Inst::ReadVar("v".into()));
        let m2 = s.push(Inst::Bin(BinOp::Mul, u, v));
        s.result = s.push(Inst::Bin(BinOp::Add, m1, m2));
        s
    }

    #[test]
    fn nvcc_fuses_left_hipcc_fuses_right() {
        let mut nv = both_sides_mul();
        FmaContract { preference: FmaPreference::LhsFirst, contract_sub: false }
            .run(&mut nv, Precision::F64);
        assert_eq!(nv.insts[6], Inst::Fma(Operand::Inst(0), Operand::Inst(1), Operand::Inst(5)));

        let mut amd = both_sides_mul();
        FmaContract { preference: FmaPreference::RhsFirst, contract_sub: false }
            .run(&mut amd, Precision::F64);
        assert_eq!(amd.insts[6], Inst::Fma(Operand::Inst(3), Operand::Inst(4), Operand::Inst(2)));
        assert_ne!(nv.insts[6], amd.insts[6]);
    }

    #[test]
    fn single_mul_side_fuses_for_both_preferences() {
        // x*y + z: only one candidate, both vendors fuse it
        for pref in [FmaPreference::LhsFirst, FmaPreference::RhsFirst] {
            let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            let x = s.push(Inst::ReadVar("x".into()));
            let y = s.push(Inst::ReadVar("y".into()));
            let m = s.push(Inst::Bin(BinOp::Mul, x, y));
            let z = s.push(Inst::ReadVar("z".into()));
            s.result = s.push(Inst::Bin(BinOp::Add, m, z));
            FmaContract { preference: pref, contract_sub: false }.run(&mut s, Precision::F64);
            assert_eq!(s.insts[4], Inst::Fma(x, y, z), "{pref:?}");
        }
    }

    #[test]
    fn multi_use_mul_is_not_fused() {
        // m = x*y used twice: m + m must stay an add
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        let m = s.push(Inst::Bin(BinOp::Mul, x, y));
        s.result = s.push(Inst::Bin(BinOp::Add, m, m));
        FmaContract { preference: FmaPreference::LhsFirst, contract_sub: false }
            .run(&mut s, Precision::F64);
        assert!(matches!(s.insts[3], Inst::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn sub_is_not_contracted() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        let m = s.push(Inst::Bin(BinOp::Mul, x, y));
        let z = s.push(Inst::ReadVar("z".into()));
        s.result = s.push(Inst::Bin(BinOp::Sub, m, z));
        FmaContract { preference: FmaPreference::LhsFirst, contract_sub: false }
            .run(&mut s, Precision::F64);
        assert!(matches!(s.insts[4], Inst::Bin(BinOp::Sub, _, _)));
    }

    #[test]
    fn plain_add_untouched() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x, y));
        FmaContract { preference: FmaPreference::LhsFirst, contract_sub: false }
            .run(&mut s, Precision::F64);
        assert!(matches!(s.insts[2], Inst::Bin(BinOp::Add, _, _)));
    }
}
