//! Optimization passes.
//!
//! Every pass is sequence-local (the kernels have no cross-statement
//! dataflow the passes could exploit — each statement re-reads its
//! variables). The [`SeqPass`] trait plus [`run_seq_pass`] driver apply a
//! pass to every instruction sequence in a kernel.
//!
//! Pass inventory and which pipelines use them:
//!
//! | pass | O0 | O1–O3 | O3_FM nvcc | O3_FM hipcc |
//! |---|---|---|---|---|
//! | [`const_fold`] | – | ✓ | ✓ | ✓ |
//! | [`fma`] contraction | –¹ | ✓ (vendor-preferenced) | ✓ | ✓ |
//! | [`finite_math`] | – | – | ✓ | – (`-DHIP_FAST_MATH` omits it) |
//! | [`recip`] | – | – | ✓ | – |
//! | [`reassoc`] (front-end) | – | – | ✓ | – |
//! | [`cse`] | – | ✓ | ✓ | ✓ |
//! | [`dce`] | – | ✓ | ✓ | ✓ |
//!
//! ¹ except HIPIFY-converted sources, which hipcc builds with its
//! real-world `-ffp-contract=fast` default even at `-O0`.
//!
//! Loop unrolling is deliberately absent: Varity loop bounds are runtime
//! inputs, so there is nothing to unroll statically (see DESIGN.md).

pub mod const_fold;
pub mod cse;
pub mod dce;
pub mod finite_math;
pub mod fma;
pub mod reassoc;
pub mod recip;

use crate::ir::{InstSeq, KernelIr, Operand};
use progen::ast::Precision;

/// A sequence-local transformation.
pub trait SeqPass {
    /// Pass name for logs and tests.
    fn name(&self) -> &'static str;
    /// Transform one instruction sequence in place, returning how many
    /// rewrites fired (the unit is pass-specific — contractions fused,
    /// instructions folded/removed, calls replaced — but zero always
    /// means "this pass left the sequence untouched").
    fn run(&self, seq: &mut InstSeq, prec: Precision) -> u64;
}

/// Apply a pass to every sequence in the kernel; returns the total
/// number of rewrites fired across all sequences.
pub fn run_seq_pass(ir: &mut KernelIr, pass: &dyn SeqPass) -> u64 {
    let prec = ir.precision;
    let mut fired = 0u64;
    ir.for_each_seq_mut(&mut |seq| fired += pass.run(seq, prec));
    fired
}

/// Replace every reference to instruction `from` with `to` throughout the
/// sequence (instructions after `from` and the result operand).
pub fn forward_uses(seq: &mut InstSeq, from: usize, to: Operand) {
    let rewrite = |o: Operand| if o == Operand::Inst(from) { to } else { o };
    for inst in &mut seq.insts {
        inst.map_operands(rewrite);
    }
    seq.result = rewrite(seq.result);
}

/// Number of uses of each instruction (references from later instructions
/// plus the sequence result).
pub fn use_counts(seq: &InstSeq) -> Vec<usize> {
    let mut counts = vec![0usize; seq.insts.len()];
    let mut bump = |o: Operand| {
        if let Operand::Inst(i) = o {
            counts[i] += 1;
        }
    };
    for inst in &seq.insts {
        for o in inst.operands() {
            bump(o);
        }
    }
    bump(seq.result);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Inst;
    use progen::ast::BinOp;

    fn seq_xy_add() -> InstSeq {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        let y = s.push(Inst::ReadVar("y".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, x, y));
        s
    }

    #[test]
    fn use_counts_include_result() {
        let s = seq_xy_add();
        assert_eq!(use_counts(&s), vec![1, 1, 1]);
    }

    #[test]
    fn forward_uses_rewrites_later_references() {
        let mut s = seq_xy_add();
        forward_uses(&mut s, 1, Operand::Const(5.0));
        assert_eq!(s.insts[2], Inst::Bin(BinOp::Add, Operand::Inst(0), Operand::Const(5.0)));
    }

    #[test]
    fn forward_uses_rewrites_result() {
        let mut s = seq_xy_add();
        forward_uses(&mut s, 2, Operand::Inst(0));
        assert_eq!(s.result, Operand::Inst(0));
    }
}
