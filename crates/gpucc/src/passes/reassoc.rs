//! Reassociation (`-fassociative-math`), part of nvcc's `-ffast-math`
//! bundle; `-DHIP_FAST_MATH` does not enable it.
//!
//! Associativity does not hold in floating point, so re-parenthesising a
//! chain changes the rounded result. This is a *front-end* transform here:
//! it rewrites the expression tree before lowering (the nvcc-like `O3_FM`
//! pipeline calls [`reassociate_program`]). Chains of three or more `+`
//! (or `*`) operands are rebuilt right-associated — `((a+b)+c)` becomes
//! `(a+(b+c))` — which rounds differently whenever the partial sums do.

use progen::ast::{BinOp, Cond, Expr, Program, Stmt};

/// Reassociate every expression in a program (returns a rewritten copy).
pub fn reassociate_program(p: &Program) -> Program {
    reassociate_program_counted(p).0
}

/// Like [`reassociate_program`] but also reports how many chains of three
/// or more operands were rebuilt — the "rewrites fired" count used by
/// compile-time telemetry and the pass-attribution report.
pub fn reassociate_program_counted(p: &Program) -> (Program, u64) {
    let mut out = p.clone();
    let mut fired = 0u64;
    for s in &mut out.body {
        reassoc_stmt(s, &mut fired);
    }
    (out, fired)
}

fn reassoc_stmt(s: &mut Stmt, fired: &mut u64) {
    match s {
        Stmt::DeclTmp { init, .. } => *init = reassoc_counted(init.clone(), fired),
        Stmt::Assign { value, .. } => *value = reassoc_counted(value.clone(), fired),
        Stmt::If { cond, body } => {
            let Cond { lhs, rhs, .. } = cond;
            *lhs = reassoc_counted(lhs.clone(), fired);
            *rhs = reassoc_counted(rhs.clone(), fired);
            for s in body {
                reassoc_stmt(s, fired);
            }
        }
        Stmt::For { body, .. } => {
            for s in body {
                reassoc_stmt(s, fired);
            }
        }
    }
}

#[cfg(test)]
fn reassoc_expr(e: Expr) -> Expr {
    reassoc_counted(e, &mut 0)
}

fn reassoc_counted(e: Expr, fired: &mut u64) -> Expr {
    match e {
        Expr::Bin(op @ (BinOp::Add | BinOp::Mul), _, _) => {
            let mut leaves = Vec::new();
            flatten(&e, op, &mut leaves, fired);
            if leaves.len() >= 3 {
                *fired += 1;
                // rebuild right-associated: a op (b op (c op d))
                let mut it = leaves.into_iter().rev();
                let mut acc = it.next().expect("non-empty chain");
                for leaf in it {
                    acc = Expr::bin(op, leaf, acc);
                }
                acc
            } else {
                match e {
                    Expr::Bin(op, l, r) => {
                        Expr::bin(op, reassoc_counted(*l, fired), reassoc_counted(*r, fired))
                    }
                    _ => unreachable!(),
                }
            }
        }
        Expr::Bin(op, l, r) => {
            Expr::bin(op, reassoc_counted(*l, fired), reassoc_counted(*r, fired))
        }
        Expr::Neg(inner) => Expr::Neg(Box::new(reassoc_counted(*inner, fired))),
        Expr::Call(f, args) => {
            Expr::Call(f, args.into_iter().map(|a| reassoc_counted(a, fired)).collect())
        }
        leaf => leaf,
    }
}

/// Collect the leaves of a maximal same-operator chain, recursing into
/// sub-expressions that are not part of the chain.
fn flatten(e: &Expr, op: BinOp, out: &mut Vec<Expr>, fired: &mut u64) {
    match e {
        Expr::Bin(o, l, r) if *o == op => {
            flatten(l, op, out, fired);
            flatten(r, op, out, fired);
        }
        other => out.push(reassoc_counted(other.clone(), fired)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Expr {
        Expr::Var(n.into())
    }

    #[test]
    fn left_chain_becomes_right_chain() {
        // ((a+b)+c) -> (a+(b+c))
        let e = Expr::bin(BinOp::Add, Expr::bin(BinOp::Add, var("a"), var("b")), var("c"));
        let r = reassoc_expr(e);
        let want = Expr::bin(BinOp::Add, var("a"), Expr::bin(BinOp::Add, var("b"), var("c")));
        assert_eq!(r, want);
    }

    #[test]
    fn two_element_chains_are_untouched() {
        let e = Expr::bin(BinOp::Add, var("a"), var("b"));
        assert_eq!(reassoc_expr(e.clone()), e);
    }

    #[test]
    fn mul_chains_reassociate_too() {
        let e = Expr::bin(BinOp::Mul, Expr::bin(BinOp::Mul, var("a"), var("b")), var("c"));
        let r = reassoc_expr(e);
        let want = Expr::bin(BinOp::Mul, var("a"), Expr::bin(BinOp::Mul, var("b"), var("c")));
        assert_eq!(r, want);
    }

    #[test]
    fn sub_breaks_the_chain() {
        // (a-b)+c: the subtraction is a chain leaf, not a member
        let e = Expr::bin(BinOp::Add, Expr::bin(BinOp::Sub, var("a"), var("b")), var("c"));
        assert_eq!(reassoc_expr(e.clone()), e);
    }

    #[test]
    fn nested_chains_inside_calls_are_rewritten() {
        use gpusim::mathlib::MathFunc;
        let chain = Expr::bin(BinOp::Add, Expr::bin(BinOp::Add, var("a"), var("b")), var("c"));
        let e = Expr::Call(MathFunc::Sqrt, vec![chain]);
        let r = reassoc_expr(e);
        match r {
            Expr::Call(MathFunc::Sqrt, args) => {
                let want =
                    Expr::bin(BinOp::Add, var("a"), Expr::bin(BinOp::Add, var("b"), var("c")));
                assert_eq!(args[0], want);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reassociation_changes_rounded_sums() {
        // verify the numeric point on a concrete triple:
        // (1 + eps/2) + eps/2 absorbs both halves; 1 + (eps/2 + eps/2)
        // rounds up by one ULP
        let a = 1.0;
        let b = 1e-16;
        let c = 1e-16;
        let left = (a + b) + c;
        let right = a + (b + c);
        assert_eq!(left, 1.0);
        assert!(right > 1.0);
    }

    #[test]
    fn program_rewrite_reaches_all_statement_kinds() {
        use progen::ast::*;
        let chain = Expr::bin(BinOp::Add, Expr::bin(BinOp::Add, var("a"), var("b")), var("c"));
        let p = Program {
            id: "t".into(),
            precision: Precision::F64,
            params: vec![],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: chain.clone() },
                Stmt::If {
                    cond: Cond { op: CmpOp::Lt, lhs: chain.clone(), rhs: var("x") },
                    body: vec![Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::Set,
                        value: chain.clone(),
                    }],
                },
            ],
        };
        let (r, fired) = reassociate_program_counted(&p);
        assert_eq!(fired, 3, "one chain per statement site");
        let want = Expr::bin(BinOp::Add, var("a"), Expr::bin(BinOp::Add, var("b"), var("c")));
        match &r.body[0] {
            Stmt::DeclTmp { init, .. } => assert_eq!(init, &want),
            other => panic!("{other:?}"),
        }
        match &r.body[1] {
            Stmt::If { cond, body } => {
                assert_eq!(cond.lhs, want);
                match &body[0] {
                    Stmt::Assign { value, .. } => assert_eq!(value, &want),
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
