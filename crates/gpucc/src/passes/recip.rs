//! Reciprocal substitution (`-freciprocal-math` + `-prec-div=false`),
//! part of nvcc's `-ffast-math` bundle. Not enabled by `-DHIP_FAST_MATH`.
//!
//! * FP32: `a / b` → `a * __frcp(b)` — the approximate hardware reciprocal
//!   (`gpusim::mathlib::fast::nv_rcp_f32`): ~22-bit accuracy, flushes
//!   subnormal divisors to zero (making the product Inf where IEEE
//!   division returns a large finite number).
//! * Both precisions: `x / C` → `x * (1/C)` for constant divisors, with
//!   `1/C` rounded once at compile time — an extra rounding IEEE division
//!   does not have.

use super::SeqPass;
use crate::ir::{Inst, InstSeq, Operand};
use crate::lower::round_const;
use progen::ast::{BinOp, Precision};

/// The reciprocal-substitution pass.
pub struct Recip;

impl SeqPass for Recip {
    fn name(&self) -> &'static str {
        "recip"
    }

    fn run(&self, seq: &mut InstSeq, prec: Precision) -> u64 {
        let mut fired = 0u64;
        // constant divisors first (no structural change)
        for inst in &mut seq.insts {
            if let Inst::Bin(op @ BinOp::Div, _, b) = inst {
                if let Operand::Const(c) = b {
                    let r = round_const(1.0 / *c, prec);
                    if r.is_finite() && r != 0.0 {
                        *op = BinOp::Mul;
                        *b = Operand::Const(r);
                        fired += 1;
                    }
                }
            }
        }
        if prec != Precision::F32 {
            return fired;
        }
        // FP32 variable divisors: rebuild with an Rcp inserted before each
        // division (indices must stay topologically ordered)
        let needs_rcp =
            seq.insts.iter().any(|i| matches!(i, Inst::Bin(BinOp::Div, _, Operand::Inst(_))));
        if !needs_rcp {
            return fired;
        }
        let old = std::mem::take(&mut seq.insts);
        let mut remap: Vec<usize> = Vec::with_capacity(old.len());
        let rewrite = |o: Operand, remap: &[usize]| match o {
            Operand::Inst(i) => Operand::Inst(remap[i]),
            c => c,
        };
        for mut inst in old {
            inst.map_operands(|o| rewrite(o, &remap));
            match inst {
                Inst::Bin(BinOp::Div, a, b @ Operand::Inst(_)) => {
                    seq.insts.push(Inst::Rcp(b));
                    let rcp = Operand::Inst(seq.insts.len() - 1);
                    seq.insts.push(Inst::Bin(BinOp::Mul, a, rcp));
                    remap.push(seq.insts.len() - 1);
                    fired += 1;
                }
                other => {
                    seq.insts.push(other);
                    remap.push(seq.insts.len() - 1);
                }
            }
        }
        seq.result = rewrite(seq.result, &remap);
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_divisor_becomes_multiply() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Div, x, Operand::Const(4.0)));
        Recip.run(&mut s, Precision::F64);
        assert_eq!(s.insts[1], Inst::Bin(BinOp::Mul, x, Operand::Const(0.25)));
    }

    #[test]
    fn constant_recip_introduces_extra_rounding() {
        // 1/3 is inexact: x * (1/3) differs from x / 3 in the last ULP for
        // many x — the divergence this pass exists to model
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let x = s.push(Inst::ReadVar("x".into()));
        s.result = s.push(Inst::Bin(BinOp::Div, x, Operand::Const(3.0)));
        Recip.run(&mut s, Precision::F64);
        match s.insts[1] {
            Inst::Bin(BinOp::Mul, _, Operand::Const(c)) => assert_eq!(c, 1.0 / 3.0),
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_and_inf_recip_divisors_are_left_alone() {
        // 1/0 = Inf and 1/Inf = 0 would change semantics structurally;
        // leave the division for the runtime to handle
        for c in [0.0, f64::INFINITY] {
            let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
            let x = s.push(Inst::ReadVar("x".into()));
            s.result = s.push(Inst::Bin(BinOp::Div, x, Operand::Const(c)));
            Recip.run(&mut s, Precision::F64);
            assert!(matches!(s.insts[1], Inst::Bin(BinOp::Div, _, _)), "divisor {c}");
        }
    }

    #[test]
    fn f32_variable_divisor_gets_hardware_rcp() {
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::ReadVar("a".into()));
        let b = s.push(Inst::ReadVar("b".into()));
        s.result = s.push(Inst::Bin(BinOp::Div, a, b));
        Recip.run(&mut s, Precision::F32);
        assert_eq!(s.insts.len(), 4);
        assert_eq!(s.insts[2], Inst::Rcp(Operand::Inst(1)));
        assert_eq!(s.insts[3], Inst::Bin(BinOp::Mul, Operand::Inst(0), Operand::Inst(2)));
        assert_eq!(s.result, Operand::Inst(3));
    }

    #[test]
    fn f64_variable_divisor_keeps_ieee_division() {
        // nvcc fast math does not relax FP64 division
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::ReadVar("a".into()));
        let b = s.push(Inst::ReadVar("b".into()));
        s.result = s.push(Inst::Bin(BinOp::Div, a, b));
        Recip.run(&mut s, Precision::F64);
        assert_eq!(s.insts.len(), 3);
        assert!(matches!(s.insts[2], Inst::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn rebuild_preserves_downstream_references() {
        // r = (a/b) + c : the add must point at the new multiply
        let mut s = InstSeq { insts: vec![], result: Operand::Const(0.0) };
        let a = s.push(Inst::ReadVar("a".into()));
        let b = s.push(Inst::ReadVar("b".into()));
        let d = s.push(Inst::Bin(BinOp::Div, a, b));
        let c = s.push(Inst::ReadVar("c".into()));
        s.result = s.push(Inst::Bin(BinOp::Add, d, c));
        Recip.run(&mut s, Precision::F32);
        assert_eq!(s.insts.len(), 6);
        assert_eq!(s.insts[5], Inst::Bin(BinOp::Add, Operand::Inst(3), Operand::Inst(4)));
        assert_eq!(s.result, Operand::Inst(5));
    }
}
