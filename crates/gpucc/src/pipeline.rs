//! Toolchain pass schedules: which passes run for
//! `{nvcc, hipcc} × {O0, O1, O2, O3, O3_FM}`.
//!
//! Calibrated against the paper's observations:
//!
//! * **O1 = O2 = O3** — Table V/VII/IX report *identical* discrepancy
//!   counts for O1–O3, so the FP-relevant pass set must be identical
//!   across them (the extra passes real compilers add at O2/O3 are not
//!   float-semantics-changing). The pipelines here differ only between
//!   O0 → O1 and O3 → O3_FM.
//! * **O0** — straight codegen, no contraction… except hipcc compiling a
//!   HIPIFY-converted source, which keeps its real-world
//!   `-ffp-contract=fast` default (the modeled mechanism for Table VII's
//!   O0 counts exceeding Table V's).
//! * **O3_FM** — nvcc's `-ffast-math` enables reassociation, finite-math-
//!   only, reciprocal substitution, FTZ and fast intrinsics; hipcc's
//!   `-DHIP_FAST_MATH` enables only the fast intrinsics and
//!   (result-flush) FTZ — paper §III-D.

use crate::ir::KernelIr;
use crate::lower::lower;
use crate::passes::{
    const_fold::ConstFold,
    cse::Cse,
    dce::Dce,
    finite_math::FiniteMath,
    fma::{FmaContract, FmaPreference},
    reassoc::reassociate_program_counted,
    recip::Recip,
    run_seq_pass, SeqPass,
};
use progen::ast::Program;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A simulated GPU toolchain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Toolchain {
    /// The nvcc-like compiler (CUDA sources, NVIDIA-like devices).
    Nvcc,
    /// The hipcc-like compiler (HIP sources, AMD-like devices).
    Hipcc,
}

impl Toolchain {
    /// Both toolchains, NVCC first (the paper's table convention).
    pub const ALL: [Toolchain; 2] = [Toolchain::Nvcc, Toolchain::Hipcc];

    /// Compiler-driver name.
    pub fn name(self) -> &'static str {
        match self {
            Toolchain::Nvcc => "nvcc",
            Toolchain::Hipcc => "hipcc",
        }
    }

    /// Source extension this toolchain accepts (compiler matching,
    /// paper §III-D).
    pub fn extension(self) -> &'static str {
        match self {
            Toolchain::Nvcc => "cu",
            Toolchain::Hipcc => "hip",
        }
    }

    fn fma_preference(self) -> FmaPreference {
        match self {
            Toolchain::Nvcc => FmaPreference::LhsFirst,
            Toolchain::Hipcc => FmaPreference::RhsFirst,
        }
    }
}

impl std::fmt::Display for Toolchain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimization level (the paper's five settings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization.
    O0,
    /// `-O1`.
    O1,
    /// `-O2`.
    O2,
    /// `-O3`.
    O3,
    /// `-O3 -ffast-math` (nvcc) / `-O3 -DHIP_FAST_MATH` (hipcc).
    O3Fm,
}

impl OptLevel {
    /// All levels, in the paper's table order.
    pub const ALL: [OptLevel; 5] =
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O3Fm];

    /// Table label (`O0` … `O3_FM`).
    pub fn label(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::O3Fm => "O3_FM",
        }
    }

    /// Index 0..5 (for the cost model and table rows).
    pub fn index(self) -> usize {
        match self {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
            OptLevel::O3 => 3,
            OptLevel::O3Fm => 4,
        }
    }

    /// True for the fast-math level.
    pub fn is_fast_math(self) -> bool {
        self == OptLevel::O3Fm
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    /// Parse a table label (`O0` … `O3_FM`) back into a level — the
    /// inverse of [`OptLevel::label`], used when decoding journal and
    /// metadata keys of the form `"nvcc:O3_FM"`.
    fn from_str(s: &str) -> Result<OptLevel, String> {
        OptLevel::ALL
            .into_iter()
            .find(|l| l.label() == s)
            .ok_or_else(|| format!("unknown optimization level {s:?}"))
    }
}

/// Compile a program with the given toolchain and level.
///
/// ```
/// use gpucc::pipeline::{compile, OptLevel, Toolchain};
/// use gpucc::interp::execute;
/// use gpusim::{Device, DeviceKind};
/// use progen::parser::parse_kernel;
/// use progen::inputs::{InputSet, InputValue};
///
/// let src = "__global__ void compute(double comp) { comp += 1.5; }";
/// let program = parse_kernel(src, "demo").unwrap();
/// let ir = compile(&program, Toolchain::Nvcc, OptLevel::O3, false);
/// let device = Device::new(DeviceKind::NvidiaLike);
/// let input = InputSet { values: vec![InputValue::Float(1.0)] };
/// let result = execute(&ir, &device, &input).unwrap();
/// assert_eq!(result.value.to_f64(), 2.5);
/// ```
///
/// `hipified` marks sources produced by the HIPIFY translator, which the
/// hipcc-like compiler builds with contraction enabled at every level
/// (ignored by nvcc).
pub fn compile(program: &Program, toolchain: Toolchain, opt: OptLevel, hipified: bool) -> KernelIr {
    compile_with_stats(program, toolchain, opt, hipified).0
}

/// What one pass did during one compile: rewrites fired and time spent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PassStat {
    /// Pass name (`reassoc`, `finite-math`, `fma-contract`, …).
    pub name: &'static str,
    /// Number of rewrites the pass applied (pass-specific unit; zero
    /// means the pass ran but changed nothing).
    pub rewrites: u64,
    /// Wall-clock nanoseconds spent in the pass.
    pub nanos: u64,
}

/// Per-pass statistics for one compile, in pass execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct CompileStats {
    /// One entry per pass that ran (skipped passes are absent).
    pub passes: Vec<PassStat>,
}

impl CompileStats {
    /// Rewrites fired by the named pass (0 if it did not run).
    pub fn rewrites(&self, name: &str) -> u64 {
        self.passes.iter().filter(|p| p.name == name).map(|p| p.rewrites).sum()
    }

    /// Names of passes that changed the kernel (rewrites > 0), in order.
    pub fn fired_passes(&self) -> Vec<&'static str> {
        self.passes.iter().filter(|p| p.rewrites > 0).map(|p| p.name).collect()
    }
}

/// [`compile`], plus per-pass rewrite counts and timings.
///
/// Telemetry side effects (when `obs` is enabled): times the whole
/// compile under the `gpucc.compile` span, bumps `gpucc.compiles`, and
/// for every pass that ran records
/// `gpucc.rewrites.{toolchain}.{level}.{pass}` (counter) and
/// `gpucc.passns.{toolchain}.{level}.{pass}` (histogram, nanoseconds).
/// While a trace is active each pass additionally emits a child trace
/// event named after the pass, carrying its rewrite count.
pub fn compile_with_stats(
    program: &Program,
    toolchain: Toolchain,
    opt: OptLevel,
    hipified: bool,
) -> (KernelIr, CompileStats) {
    let mut stats = CompileStats::default();
    let ir = compile_impl(program, toolchain, opt, hipified, &mut stats, &mut |_, _, _| {});
    (ir, stats)
}

/// The IR as it stood after one compilation stage completed — the oracle's
/// per-pass equivalence hook.
#[derive(Debug, Clone)]
pub struct PassTrace {
    /// Stage name: `"lower"` for the pre-pass snapshot, otherwise the pass
    /// name from [`CompileStats`] (`const-fold`, `fma-contract`, …).
    pub name: &'static str,
    /// Rewrites the stage fired (always 0 for `"lower"`).
    pub rewrites: u64,
    /// Snapshot of the kernel IR after this stage.
    pub ir: KernelIr,
}

/// [`compile_with_stats`], plus an IR snapshot after every stage.
///
/// The first trace is always `"lower"` — the lowered IR with the level's
/// flags set, before any IR pass ran. Executing the snapshots in order and
/// comparing each result to its predecessor localizes a numerical change
/// to the stage that introduced it (this is how `crates/oracle` attributes
/// a violation to the first non-preserving pass). The front-end `reassoc`
/// rewrite happens before lowering and therefore has no snapshot of its
/// own; its effect is part of the `"lower"` snapshot and its rewrite count
/// is still reported in [`CompileStats`].
pub fn compile_traced(
    program: &Program,
    toolchain: Toolchain,
    opt: OptLevel,
    hipified: bool,
) -> (KernelIr, CompileStats, Vec<PassTrace>) {
    let mut stats = CompileStats::default();
    let mut traces = Vec::new();
    let ir = compile_impl(program, toolchain, opt, hipified, &mut stats, &mut |name, fired, ir| {
        traces.push(PassTrace { name, rewrites: fired, ir: ir.clone() });
    });
    (ir, stats, traces)
}

/// Shared pipeline body. `observe(stage, rewrites, ir)` is called with the
/// `"lower"` snapshot and then once after every IR pass, in execution
/// order; [`compile_with_stats`] passes a no-op observer so the plain path
/// pays no snapshot cost.
fn compile_impl(
    program: &Program,
    toolchain: Toolchain,
    opt: OptLevel,
    hipified: bool,
    stats: &mut CompileStats,
    observe: &mut dyn FnMut(&'static str, u64, &KernelIr),
) -> KernelIr {
    let _span = obs::span("gpucc.compile")
        .attr("toolchain", toolchain.name())
        .attr("level", opt.label())
        .attr("hipified", hipified);

    // nvcc -ffast-math reassociates in the front end
    let reassociated;
    let program = if toolchain == Toolchain::Nvcc && opt.is_fast_math() {
        let t = Instant::now();
        let (p, fired) = reassociate_program_counted(program);
        let nanos = t.elapsed().as_nanos() as u64;
        if obs::trace::active() {
            obs::trace::emit("reassoc", t, nanos, vec![("rewrites", fired.into())]);
        }
        stats.passes.push(PassStat { name: "reassoc", rewrites: fired, nanos });
        reassociated = p;
        &reassociated
    } else {
        program
    };

    let mut ir = lower(program);
    ir.flags.opt_level_index = opt.index() as u8;
    ir.flags.fast_math = opt.is_fast_math();
    observe("lower", 0, &ir);

    let optimize = opt != OptLevel::O0;
    let contract = optimize || (hipified && toolchain == Toolchain::Hipcc);

    let mut timed = |ir: &mut KernelIr,
                     pass: &dyn SeqPass,
                     stats: &mut CompileStats,
                     observe: &mut dyn FnMut(&'static str, u64, &KernelIr)| {
        let t = Instant::now();
        let fired = run_seq_pass(ir, pass);
        let nanos = t.elapsed().as_nanos() as u64;
        if obs::trace::active() {
            obs::trace::emit(pass.name(), t, nanos, vec![("rewrites", fired.into())]);
        }
        stats.passes.push(PassStat { name: pass.name(), rewrites: fired, nanos });
        observe(pass.name(), fired, ir);
    };

    if optimize {
        timed(&mut ir, &ConstFold, stats, observe);
    }
    if toolchain == Toolchain::Nvcc && opt.is_fast_math() {
        timed(&mut ir, &FiniteMath, stats, observe);
        timed(&mut ir, &Recip, stats, observe);
    }
    if contract {
        timed(
            &mut ir,
            &FmaContract {
                preference: toolchain.fma_preference(),
                contract_sub: toolchain == Toolchain::Hipcc,
            },
            stats,
            observe,
        );
    }
    if optimize || contract {
        timed(&mut ir, &Cse, stats, observe);
        timed(&mut ir, &Dce, stats, observe);
    }

    if obs::enabled() {
        obs::add("gpucc.compiles", 1);
        for ps in &stats.passes {
            let key = format!("{}.{}.{}", toolchain.name(), opt.label(), ps.name);
            obs::add(&format!("gpucc.rewrites.{key}"), ps.rewrites);
            obs::record(&format!("gpucc.passns.{key}"), ps.nanos);
        }
    }

    ir
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::Precision;

    fn sample(seed: u64, i: u64) -> Program {
        generate_program(&GenConfig::varity_default(Precision::F64), seed, i)
    }

    #[test]
    fn o1_o2_o3_produce_identical_ir() {
        for i in 0..30 {
            let p = sample(3, i);
            for tc in Toolchain::ALL {
                let o1 = compile(&p, tc, OptLevel::O1, false);
                let mut o2 = compile(&p, tc, OptLevel::O2, false);
                let mut o3 = compile(&p, tc, OptLevel::O3, false);
                // flags record the level; normalize before comparing bodies
                o2.flags = o1.flags;
                o3.flags = o1.flags;
                assert_eq!(o1, o2, "{tc} program {i}");
                assert_eq!(o1, o3, "{tc} program {i}");
            }
        }
    }

    #[test]
    fn o0_is_unoptimized_lowering() {
        let p = sample(5, 0);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let plain = crate::lower::lower(&p);
        assert_eq!(ir.body, plain.body);
        assert!(!ir.flags.fast_math);
    }

    #[test]
    fn toolchains_agree_at_o0_for_plain_sources() {
        for i in 0..20 {
            let p = sample(7, i);
            let nv = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
            let amd = compile(&p, Toolchain::Hipcc, OptLevel::O0, false);
            assert_eq!(nv.body, amd.body, "program {i}");
        }
    }

    #[test]
    fn hipified_sources_contract_at_o0_on_hipcc_only() {
        // find a program whose IR actually contains a contraction site
        let mut found = false;
        for i in 0..100 {
            let p = sample(11, i);
            let plain = compile(&p, Toolchain::Hipcc, OptLevel::O0, false);
            let hipified = compile(&p, Toolchain::Hipcc, OptLevel::O0, true);
            let nv_hipified_flag = compile(&p, Toolchain::Nvcc, OptLevel::O0, true);
            assert_eq!(nv_hipified_flag.body, plain.body, "nvcc ignores hipified");
            if hipified.body != plain.body {
                found = true;
                break;
            }
        }
        assert!(found, "no program contracted at O0-hipified in 100 samples");
    }

    #[test]
    fn fast_math_sets_flags() {
        let p = sample(13, 0);
        for tc in Toolchain::ALL {
            let ir = compile(&p, tc, OptLevel::O3Fm, false);
            assert!(ir.flags.fast_math);
            assert_eq!(ir.flags.opt_level_index, 4);
        }
    }

    #[test]
    fn toolchain_pipelines_eventually_differ_at_o1() {
        // somewhere in 100 programs the FMA preference must bite
        let mut diff = false;
        for i in 0..100 {
            let p = sample(17, i);
            let nv = compile(&p, Toolchain::Nvcc, OptLevel::O1, false);
            let amd = compile(&p, Toolchain::Hipcc, OptLevel::O1, false);
            if nv.body != amd.body {
                diff = true;
                break;
            }
        }
        assert!(diff, "pipelines never diverged at O1 across 100 programs");
    }

    #[test]
    fn stats_compile_matches_plain_compile() {
        for i in 0..20 {
            let p = sample(19, i);
            for tc in Toolchain::ALL {
                for opt in OptLevel::ALL {
                    let plain = compile(&p, tc, opt, false);
                    let (ir, _) = compile_with_stats(&p, tc, opt, false);
                    assert_eq!(plain, ir, "{tc} {opt} program {i}");
                }
            }
        }
    }

    #[test]
    fn o0_runs_no_passes_and_fast_math_runs_the_bundle() {
        let p = sample(23, 0);
        let (_, o0) = compile_with_stats(&p, Toolchain::Nvcc, OptLevel::O0, false);
        assert!(o0.passes.is_empty(), "{:?}", o0.passes);

        let (_, fm) = compile_with_stats(&p, Toolchain::Nvcc, OptLevel::O3Fm, false);
        let names: Vec<_> = fm.passes.iter().map(|ps| ps.name).collect();
        assert_eq!(
            names,
            ["reassoc", "const-fold", "finite-math", "recip", "fma-contract", "cse", "dce"]
        );

        // hipcc fast math omits the nvcc-only bundle (paper §III-D)
        let (_, hip) = compile_with_stats(&p, Toolchain::Hipcc, OptLevel::O3Fm, false);
        let names: Vec<_> = hip.passes.iter().map(|ps| ps.name).collect();
        assert_eq!(names, ["const-fold", "fma-contract", "cse", "dce"]);
    }

    #[test]
    fn traced_compile_matches_stats_compile() {
        for i in 0..10 {
            let p = sample(31, i);
            for tc in Toolchain::ALL {
                for opt in OptLevel::ALL {
                    let (ir, stats) = compile_with_stats(&p, tc, opt, false);
                    let (tir, tstats, traces) = compile_traced(&p, tc, opt, false);
                    assert_eq!(ir, tir, "{tc} {opt} program {i}");
                    // nanos differ between runs; names and rewrites must not
                    let summary = |s: &CompileStats| -> Vec<_> {
                        s.passes.iter().map(|ps| (ps.name, ps.rewrites)).collect()
                    };
                    assert_eq!(summary(&stats), summary(&tstats), "{tc} {opt} program {i}");
                    // trace 0 is the lowering snapshot; the rest mirror the
                    // IR passes in stats order (reassoc is pre-lowering and
                    // has no snapshot)
                    assert_eq!(traces[0].name, "lower");
                    assert_eq!(traces[0].rewrites, 0);
                    let traced: Vec<_> = traces[1..].iter().map(|t| t.name).collect();
                    let ran: Vec<_> =
                        stats.passes.iter().map(|ps| ps.name).filter(|n| *n != "reassoc").collect();
                    assert_eq!(traced, ran, "{tc} {opt} program {i}");
                    // the last snapshot is the final IR
                    assert_eq!(traces.last().unwrap().ir, tir);
                }
            }
        }
    }

    #[test]
    fn traced_o0_snapshot_is_plain_lowering() {
        let p = sample(37, 0);
        let (ir, _, traces) = compile_traced(&p, Toolchain::Nvcc, OptLevel::O0, false);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].ir, ir);
        assert_eq!(traces[0].ir.body, crate::lower::lower(&p).body);
    }

    #[test]
    fn fma_contraction_fires_somewhere_in_a_sample() {
        let total: u64 = (0..50)
            .map(|i| {
                let p = sample(29, i);
                compile_with_stats(&p, Toolchain::Nvcc, OptLevel::O1, false)
                    .1
                    .rewrites("fma-contract")
            })
            .sum();
        assert!(total > 0, "fma-contract never fired across 50 programs");
    }

    #[test]
    fn labels_and_indices() {
        assert_eq!(OptLevel::O3Fm.label(), "O3_FM");
        assert_eq!(OptLevel::O0.index(), 0);
        assert_eq!(OptLevel::O3Fm.index(), 4);
        assert_eq!(Toolchain::Nvcc.extension(), "cu");
        assert_eq!(Toolchain::Hipcc.extension(), "hip");
        assert_eq!(OptLevel::ALL.len(), 5);
    }
}
