//! Extended-precision ground-truth execution of the O0 register IR.
//!
//! The campaign's two vendor sides can only be compared *against each
//! other* — a discrepancy says the toolchains disagree, never which one
//! drifted from the true value. This module adds the third side of the
//! comparison plane: a strict reference executor that evaluates the same
//! resolved kernel over [`fpcore::dd::Dd`] double-double values
//! (~106-bit significand) and rounds **once** at the very end, so the
//! result is the correctly-rounded-from-truth value for the whole
//! kernel rather than a chain of per-operation roundings.
//!
//! Semantics are deliberately strict:
//!
//! * no FTZ/DAZ — subnormals participate at full precision;
//! * `Rcp` is the exact reciprocal, not a hardware approximation;
//! * math calls dispatch to the double-double ports in [`fpcore::dd`]
//!   (the divergence-prone entry points — `fmod`, `ceil`, the
//!   transcendentals — are genuine extended-precision implementations,
//!   not round-trips through the vendor libraries);
//! * control flow (`if` comparisons, loop bounds) follows the *true*
//!   values, because the reference answers "what should this kernel
//!   have computed", not "what did a particular rounding schedule do".
//!
//! Inputs and literal constants are first rounded to the kernel's
//! storage precision (`f32` for FP32 kernels) before being lifted into
//! double-double: the reference answers for the same bit-level inputs
//! the vendor kernels actually received.
//!
//! The executor is only meaningful on strict (non-fast-math) O0 IR —
//! fast-math cells have no single true value to compare against, which
//! is exactly why the verdict layer marks them `TruthUndecided`.

use crate::interp::{ExecBudget, ExecError, ExecResult, ExecutableKernel};
use crate::ir::Operand;
use crate::resolve::{ParamSlot, RInst, RNode, RSeq, RTarget, ResolvedKernel};
use fpcore::dd::Dd;
use fpcore::exceptions::ExceptionFlags;
use gpusim::mathlib::MathFunc;
use progen::ast::CmpOp;
use progen::inputs::{InputSet, InputValue, ARRAY_LEN};
use progen::Precision;
use std::time::Instant;

use crate::interp::{ExecValue, DEADLINE_POLL_MASK};

/// Evaluate one math-library entry point over double-double values.
///
/// Unary functions ignore `b` (the caller binds missing arguments to
/// zero, mirroring the interpreter).
pub fn dd_math_call(f: MathFunc, a: Dd, b: Dd) -> Dd {
    match f {
        MathFunc::Sin => a.sin(),
        MathFunc::Cos => a.cos(),
        MathFunc::Tan => a.tan(),
        MathFunc::Asin => a.asin(),
        MathFunc::Acos => a.acos(),
        MathFunc::Atan => a.atan(),
        MathFunc::Sinh => a.sinh(),
        MathFunc::Cosh => a.cosh(),
        MathFunc::Tanh => a.tanh(),
        MathFunc::Exp => a.exp(),
        MathFunc::Exp2 => a.exp2(),
        MathFunc::Log => a.ln(),
        MathFunc::Log2 => a.log2(),
        MathFunc::Log10 => a.log10(),
        MathFunc::Sqrt => a.sqrt(),
        MathFunc::Cbrt => a.cbrt(),
        MathFunc::Fabs => a.abs(),
        MathFunc::Floor => a.floor(),
        MathFunc::Ceil => a.ceil(),
        MathFunc::Trunc => a.trunc(),
        MathFunc::Fmod => a.fmod(b),
        MathFunc::Pow => a.pow(b),
        MathFunc::Fmin => a.min(b),
        MathFunc::Fmax => a.max(b),
        MathFunc::Atan2 => a.atan2(b),
        MathFunc::Hypot => a.hypot(b),
        MathFunc::Expm1 => a.expm1(),
        MathFunc::Log1p => a.ln_1p(),
        MathFunc::Asinh => a.asinh(),
        MathFunc::Acosh => a.acosh(),
        MathFunc::Atanh => a.atanh(),
        MathFunc::Round => a.round(),
        MathFunc::Rint => a.round_ties_even(),
        MathFunc::Rsqrt => a.rsqrt(),
        MathFunc::Erf => a.erf(),
        MathFunc::Tgamma => a.tgamma(),
    }
}

/// IEEE comparison semantics over double-double values: any comparison
/// involving NaN is false, except `!=` which is true. Mirrors
/// [`crate::interp`]'s `compare` so control flow classifies identically
/// when values agree.
fn compare_dd(op: CmpOp, a: Dd, b: Dd) -> bool {
    use std::cmp::Ordering;
    match a.cmp_val(b) {
        None => op == CmpOp::Ne,
        Some(ord) => match op {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        },
    }
}

/// Execute a prepared kernel over double-double values under an explicit
/// fuel budget, rounding once to the kernel's precision at the end.
///
/// The kernel should be compiled at `O0` with a strict (non-fast-math)
/// pipeline; the executor itself does not check this — the verdict
/// layer refuses to call it for fast-math cells.
pub fn execute_reference_budgeted(
    kernel: &ExecutableKernel,
    inputs: &InputSet,
    budget: ExecBudget,
) -> Result<ExecResult, ExecError> {
    #[cfg(feature = "chaos")]
    crate::chaos::maybe_panic(&kernel.program_id);
    let params = kernel.params();
    if inputs.values.len() != params.len() {
        return Err(ExecError::BadInputs(format!(
            "{} inputs for {} parameters",
            inputs.values.len(),
            params.len()
        )));
    }
    let r = kernel.resolved_kernel();
    let mut m = RefMachine {
        resolved: r,
        precision: kernel.precision,
        scalars: vec![None; r.n_floats],
        ints: vec![None; r.n_ints],
        arrays: vec![Vec::new(); r.n_arrays],
        steps: 0,
        budget,
        deadline: budget
            .max_wall_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
    };
    for ((param, value), slot) in params.iter().zip(&inputs.values).zip(&r.param_slots) {
        match (slot, value) {
            (ParamSlot::Float(s), InputValue::Float(v)) => {
                m.scalars[*s] = Some(m.lift(*v));
            }
            (ParamSlot::Int(s), InputValue::Int(v)) => {
                m.ints[*s] = Some(*v);
            }
            (ParamSlot::Array(s), InputValue::ArrayFill(v)) => {
                m.arrays[*s] = vec![m.lift(*v); ARRAY_LEN];
            }
            (_, val) => {
                return Err(ExecError::BadInputs(format!(
                    "parameter {} of type {:?} got {val:?}",
                    param.name, param.ty
                )))
            }
        }
    }
    let exec_t = if obs::enabled() { Some(Instant::now()) } else { None };
    m.run_nodes(&r.body)?;
    if obs::enabled() {
        obs::add("reference.execs", 1);
        obs::add("reference.ops", m.steps);
        if let Some(t) = exec_t {
            let ns = t.elapsed().as_nanos() as u64;
            obs::record("reference.execns", ns);
            obs::record("reference.nsperop", ns / m.steps.max(1));
        }
    }
    let truth = m.scalars[r.comp_slot].ok_or_else(|| ExecError::UnknownVar("comp".into()))?;
    let value = match kernel.precision {
        Precision::F64 => ExecValue::F64(truth.to_f64()),
        Precision::F32 => ExecValue::F32(truth.to_f32()),
    };
    Ok(ExecResult {
        value,
        // the reference has no FPU status register: IEEE exception events
        // are a property of a particular rounding schedule, which the
        // single-rounding truth deliberately does not have
        exceptions: ExceptionFlags::new(),
        cost_slots: 0,
        steps: m.steps,
    })
}

struct RefMachine<'a> {
    resolved: &'a ResolvedKernel,
    precision: Precision,
    scalars: Vec<Option<Dd>>,
    ints: Vec<Option<i64>>,
    arrays: Vec<Vec<Dd>>,
    steps: u64,
    budget: ExecBudget,
    deadline: Option<Instant>,
}

impl<'a> RefMachine<'a> {
    /// Lift a host value into double-double through the kernel's storage
    /// precision: FP32 kernels round to f32 first (exactly what the
    /// vendor interpreters' `T::from_f64` does), so the reference
    /// answers for the same bit-level inputs.
    fn lift(&self, x: f64) -> Dd {
        match self.precision {
            Precision::F64 => Dd::from_f64(x),
            Precision::F32 => Dd::from_f64((x as f32) as f64),
        }
    }

    fn run_nodes(&mut self, nodes: &[RNode]) -> Result<(), ExecError> {
        for node in nodes {
            match node {
                RNode::Store { target, seq } => {
                    let v = self.eval_seq(seq)?;
                    match *target {
                        RTarget::Var(slot) => self.scalars[slot] = Some(v),
                        RTarget::Arr(arr, idx) => {
                            let i = self.index_value(idx)?;
                            let a = &mut self.arrays[arr];
                            *a.get_mut(i).ok_or_else(|| {
                                ExecError::OutOfBounds(self.resolved.array_names[arr].clone())
                            })? = v;
                        }
                    }
                }
                RNode::If { lhs, op, rhs, body } => {
                    let a = self.eval_seq(lhs)?;
                    let b = self.eval_seq(rhs)?;
                    if compare_dd(*op, a, b) {
                        self.run_nodes(body)?;
                    }
                }
                RNode::For { var, bound, body } => {
                    let n = self.ints[*bound]
                        .ok_or_else(|| ExecError::UnknownVar("loop bound".into()))?;
                    let n = n.clamp(0, ARRAY_LEN as i64);
                    for i in 0..n {
                        self.ints[*var] = Some(i);
                        self.run_nodes(body)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn index_value(&self, idx: usize) -> Result<usize, ExecError> {
        let i = self.ints[idx].ok_or_else(|| ExecError::UnknownVar("index".into()))?;
        usize::try_from(i).map_err(|_| ExecError::OutOfBounds("index".into()))
    }

    fn eval_seq(&mut self, seq: &RSeq) -> Result<Dd, ExecError> {
        let mut values: Vec<Dd> = Vec::with_capacity(seq.insts.len());
        for inst in &seq.insts {
            self.steps += 1;
            if self.steps > self.budget.max_steps {
                return Err(ExecError::StepLimit {
                    budget: self.budget.max_steps,
                    steps: self.steps,
                });
            }
            if self.steps & DEADLINE_POLL_MASK == 0 {
                if let Some(deadline) = self.deadline {
                    if Instant::now() >= deadline {
                        return Err(ExecError::Timeout {
                            budget_ms: self.budget.max_wall_ms.unwrap_or(0),
                            steps: self.steps,
                        });
                    }
                }
            }
            let resolve_op = |o: Operand, values: &[Dd]| -> Dd {
                match o {
                    Operand::Const(c) => self.lift(c),
                    Operand::Inst(i) => values[i],
                }
            };
            let v = match inst {
                RInst::Const(c) => self.lift(*c),
                RInst::ReadVar(slot) => self.scalars[*slot].ok_or_else(|| {
                    ExecError::UnknownVar(self.resolved.float_names[*slot].clone())
                })?,
                RInst::ReadIntAsFloat(slot) => {
                    let i = self.ints[*slot].ok_or_else(|| ExecError::UnknownVar("int".into()))?;
                    self.lift(i as f64)
                }
                RInst::ReadArr(arr, idx) => {
                    let i = self.index_value(*idx)?;
                    *self.arrays[*arr].get(i).ok_or_else(|| {
                        ExecError::OutOfBounds(self.resolved.array_names[*arr].clone())
                    })?
                }
                // truth runs one thread, tid 0 — same as the campaign
                RInst::ReadThreadIdx => Dd::ZERO,
                RInst::Neg(a) => resolve_op(*a, &values).neg(),
                RInst::Bin(op, a, b) => {
                    let x = resolve_op(*a, &values);
                    let y = resolve_op(*b, &values);
                    match op {
                        progen::ast::BinOp::Add => x.add(y),
                        progen::ast::BinOp::Sub => x.sub(y),
                        progen::ast::BinOp::Mul => x.mul(y),
                        progen::ast::BinOp::Div => x.div(y),
                    }
                }
                RInst::Fma(a, b, c) => resolve_op(*a, &values)
                    .mul(resolve_op(*b, &values))
                    .add(resolve_op(*c, &values)),
                RInst::Fms(a, b, c) => resolve_op(*a, &values)
                    .mul(resolve_op(*b, &values))
                    .sub(resolve_op(*c, &values)),
                RInst::Fnma(a, b, c) => resolve_op(*c, &values)
                    .sub(resolve_op(*a, &values).mul(resolve_op(*b, &values))),
                RInst::Rcp(a) => resolve_op(*a, &values).recip(),
                RInst::Call(f, args) => {
                    let a = args.first().map(|o| resolve_op(*o, &values)).unwrap_or(Dd::ZERO);
                    let b = args.get(1).map(|o| resolve_op(*o, &values)).unwrap_or(Dd::ZERO);
                    dd_math_call(*f, a, b)
                }
            };
            values.push(v);
        }
        Ok(match seq.result {
            Operand::Const(c) => self.lift(c),
            Operand::Inst(i) => values[i],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute_prepared_budgeted, prepare};
    use crate::pipeline::{compile, OptLevel, Toolchain};
    use gpusim::{Device, DeviceKind};
    use progen::ast::*;

    fn device() -> Device {
        Device::new(DeviceKind::NvidiaLike)
    }

    fn program(precision: Precision, body: Vec<Stmt>) -> Program {
        Program {
            id: "ref-t".into(),
            precision,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "x".into(), ty: ParamType::Float },
            ],
            body,
        }
    }

    fn inputs(comp: f64, x: f64) -> InputSet {
        InputSet { values: vec![InputValue::Float(comp), InputValue::Float(x)] }
    }

    fn run_ref(p: &Program, inp: &InputSet) -> ExecValue {
        let ir = compile(p, Toolchain::Nvcc, OptLevel::O0, false);
        let k = prepare(&ir).expect("prepare");
        execute_reference_budgeted(&k, inp, ExecBudget::default()).expect("ref exec").value
    }

    fn run_interp(p: &Program, inp: &InputSet) -> ExecValue {
        let ir = compile(p, Toolchain::Nvcc, OptLevel::O0, false);
        let k = prepare(&ir).expect("prepare");
        execute_prepared_budgeted(&k, &device(), inp, ExecBudget::default()).expect("interp").value
    }

    fn add_x_to_comp() -> Stmt {
        Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::Var("x".into()),
        }
    }

    #[test]
    fn single_op_agrees_with_ieee_interpreter() {
        // one operation + one final rounding == per-op IEEE rounding:
        // the double-double sum of two exact f64s rounds to the IEEE sum
        let p = program(Precision::F64, vec![add_x_to_comp()]);
        for (a, b) in [(0.1, 0.2), (1e300, -1e284), (3.5e-310, 1.25e-310), (-7.0, 7.0)] {
            let inp = inputs(a, b);
            assert_eq!(run_ref(&p, &inp).bits(), run_interp(&p, &inp).bits());
        }
    }

    #[test]
    fn truth_keeps_residue_a_per_op_schedule_loses() {
        // (comp + x) - 1 with comp=1, |x| << 1: per-op IEEE rounding
        // returns 0, the single-rounding truth returns x exactly
        let p = program(
            Precision::F64,
            vec![
                add_x_to_comp(),
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::SubAssign,
                    value: Expr::Lit(1.0),
                },
            ],
        );
        let inp = inputs(1.0, 1e-30);
        assert_eq!(run_interp(&p, &inp).to_f64(), 0.0);
        assert_eq!(run_ref(&p, &inp).to_f64(), 1e-30);
    }

    #[test]
    fn fig5_ceil_truth_is_finite() {
        // the paper's Fig. 5 mechanism: ceil(1.5955e-125) is exactly 1,
        // so the true quotient is finite — the NVIDIA-like ceil's
        // 1-ulp-under result is what produces Inf on the nvcc side
        let p = Program {
            id: "fig5-ref".into(),
            precision: Precision::F64,
            params: vec![Param { name: "comp".into(), ty: ParamType::Float }],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: Expr::Lit(1.1147e-307) },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::bin(
                        BinOp::Div,
                        Expr::Var("tmp_1".into()),
                        Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                    ),
                },
            ],
        };
        let inp = InputSet { values: vec![InputValue::Float(1.2374e-306)] };
        let truth = run_ref(&p, &inp).to_f64();
        assert!(truth.is_finite(), "truth must be finite, got {truth}");
        assert!((truth - 1.34887e-306).abs() < 1e-310, "truth ≈ 1.34887e-306, got {truth:e}");
    }

    #[test]
    fn f32_kernels_round_inputs_and_result_to_f32() {
        let p = program(
            Precision::F32,
            vec![Stmt::Assign {
                target: LValue::Var("comp".into()),
                op: AssignOp::MulAssign,
                value: Expr::Var("x".into()),
            }],
        );
        let inp = inputs(0.1, 10.0); // 0.1 is inexact in f32
        let r = run_ref(&p, &inp);
        assert!(matches!(r, ExecValue::F32(_)));
        // truth: (f32)0.1 * (f32)10 computed exactly, rounded once to
        // f32 — same as the interpreter because one product, one rounding
        assert_eq!(r.bits(), run_interp(&p, &inp).bits());
    }

    #[test]
    fn step_budget_is_enforced() {
        let p = program(Precision::F64, vec![add_x_to_comp()]);
        let tiny = ExecBudget { max_steps: 1, max_wall_ms: None };
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let k = prepare(&ir).expect("prepare");
        let err = execute_reference_budgeted(&k, &inputs(1.0, 2.0), tiny).unwrap_err();
        assert!(matches!(err, ExecError::StepLimit { .. }), "got {err:?}");
    }

    #[test]
    fn math_dispatch_covers_every_function() {
        // every MathFunc evaluates without panicking on a benign input
        for f in MathFunc::ALL {
            let v = dd_math_call(f, Dd::from_f64(0.5), Dd::from_f64(0.25));
            assert!(!v.hi.is_nan(), "{f:?} returned NaN on benign input");
        }
    }
}
