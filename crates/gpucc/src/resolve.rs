//! Name resolution: compile-time symbol-to-slot mapping.
//!
//! The IR keeps human-readable names (good for serialization, traces and
//! debugging), but executing a campaign means interpreting hundreds of
//! thousands of kernels — and a `HashMap<String, T>` lookup per
//! `ReadVar`/`Store` is exactly the per-item allocation-and-hash overhead
//! the HPC guides warn about. [`resolve`] walks a kernel once and produces
//! a [`ResolvedKernel`] in which every variable reference is a dense slot
//! index; the interpreter then runs on plain `Vec` state.
//!
//! Resolution also settles, once per kernel instead of once per read,
//! whether a `ReadVar` names a float (parameter/temporary) or an integer
//! (loop bound/induction variable read in a float expression).

use crate::ir::{Inst, InstSeq, KernelIr, Node, Operand, StoreTarget};
use progen::ast::{CmpOp, ParamType};
use std::collections::HashMap;

/// A float-variable slot.
pub type FloatSlot = usize;
/// An integer-variable slot.
pub type IntSlot = usize;
/// An array slot.
pub type ArraySlot = usize;

/// A resolved instruction (mirror of [`Inst`] with slots).
#[derive(Debug, Clone, PartialEq)]
pub enum RInst {
    /// Read a float slot.
    ReadVar(FloatSlot),
    /// Read an integer slot, promoted to the kernel precision.
    ReadIntAsFloat(IntSlot),
    /// Read `array[int_slot]`.
    ReadArr(ArraySlot, IntSlot),
    /// `threadIdx.x` promoted to the kernel precision.
    ReadThreadIdx,
    /// Binary arithmetic.
    Bin(progen::ast::BinOp, Operand, Operand),
    /// Negation.
    Neg(Operand),
    /// Fused multiply-add.
    Fma(Operand, Operand, Operand),
    /// Fused multiply-subtract.
    Fms(Operand, Operand, Operand),
    /// Fused negate-multiply-add.
    Fnma(Operand, Operand, Operand),
    /// Approximate reciprocal.
    Rcp(Operand),
    /// Math call.
    Call(gpusim::mathlib::MathFunc, Vec<Operand>),
    /// Folded constant.
    Const(f64),
}

/// A resolved instruction sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct RSeq {
    /// Instructions in execution order.
    pub insts: Vec<RInst>,
    /// Result operand.
    pub result: Operand,
}

/// A resolved store destination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RTarget {
    /// Scalar slot.
    Var(FloatSlot),
    /// `array[int_slot]`.
    Arr(ArraySlot, IntSlot),
}

/// A resolved structured node.
#[derive(Debug, Clone, PartialEq)]
pub enum RNode {
    /// Evaluate and store.
    Store {
        /// Destination slot.
        target: RTarget,
        /// Value computation.
        seq: RSeq,
    },
    /// Conditional.
    If {
        /// Left side.
        lhs: RSeq,
        /// Operator.
        op: CmpOp,
        /// Right side.
        rhs: RSeq,
        /// Then-branch.
        body: Vec<RNode>,
    },
    /// Counted loop over an integer slot bound.
    For {
        /// Induction-variable slot.
        var: IntSlot,
        /// Bound slot.
        bound: IntSlot,
        /// Body.
        body: Vec<RNode>,
    },
}

/// Where each kernel parameter lands in the slot space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSlot {
    /// Float parameter → float slot.
    Float(FloatSlot),
    /// Int parameter → int slot.
    Int(IntSlot),
    /// Array parameter → array slot.
    Array(ArraySlot),
}

/// A kernel with all names resolved to dense slots.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedKernel {
    /// Slot assignment per parameter, in signature order.
    pub param_slots: Vec<ParamSlot>,
    /// Number of float slots (params + temporaries).
    pub n_floats: usize,
    /// Number of int slots (params + loop variables).
    pub n_ints: usize,
    /// Number of array slots.
    pub n_arrays: usize,
    /// Float-slot names (trace rendering; index = slot).
    pub float_names: Vec<String>,
    /// Array-slot names (trace rendering).
    pub array_names: Vec<String>,
    /// The float slot of `comp` (the printed result).
    pub comp_slot: FloatSlot,
    /// Resolved body.
    pub body: Vec<RNode>,
}

/// Resolution errors (malformed hand-written kernels; generated kernels
/// never produce them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A name is read or stored that no parameter/temporary declares.
    UnknownName(String),
    /// The kernel has no `comp` accumulator.
    NoComp,
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownName(n) => write!(f, "unresolved name `{n}`"),
            ResolveError::NoComp => f.write_str("kernel never defines `comp`"),
        }
    }
}

impl std::error::Error for ResolveError {}

struct Resolver {
    floats: HashMap<String, FloatSlot>,
    ints: HashMap<String, IntSlot>,
    arrays: HashMap<String, ArraySlot>,
    float_names: Vec<String>,
    array_names: Vec<String>,
}

impl Resolver {
    fn float_slot(&mut self, name: &str) -> FloatSlot {
        if let Some(&s) = self.floats.get(name) {
            return s;
        }
        let s = self.float_names.len();
        self.floats.insert(name.to_string(), s);
        self.float_names.push(name.to_string());
        s
    }

    fn int_slot(&mut self, name: &str) -> IntSlot {
        if let Some(&s) = self.ints.get(name) {
            return s;
        }
        let s = self.ints.len();
        self.ints.insert(name.to_string(), s);
        s
    }

    fn array_slot(&self, name: &str) -> Result<ArraySlot, ResolveError> {
        self.arrays.get(name).copied().ok_or_else(|| ResolveError::UnknownName(name.to_string()))
    }

    fn resolve_seq(&mut self, seq: &InstSeq) -> Result<RSeq, ResolveError> {
        let insts = seq
            .insts
            .iter()
            .map(|inst| {
                Ok(match inst {
                    Inst::ReadVar(name) => {
                        // settled once here: float, else int-promotion, else
                        // it's a forward reference to a not-yet-stored
                        // temporary — allocate the float slot (the runtime
                        // "unset" check reports it if actually read first)
                        if let Some(&s) = self.floats.get(name) {
                            RInst::ReadVar(s)
                        } else if let Some(&s) = self.ints.get(name) {
                            RInst::ReadIntAsFloat(s)
                        } else {
                            RInst::ReadVar(self.float_slot(name))
                        }
                    }
                    Inst::ReadArr(arr, idx) => {
                        RInst::ReadArr(self.array_slot(arr)?, self.int_slot(idx))
                    }
                    Inst::ReadThreadIdx => RInst::ReadThreadIdx,
                    Inst::Bin(op, a, b) => RInst::Bin(*op, *a, *b),
                    Inst::Neg(a) => RInst::Neg(*a),
                    Inst::Fma(a, b, c) => RInst::Fma(*a, *b, *c),
                    Inst::Fms(a, b, c) => RInst::Fms(*a, *b, *c),
                    Inst::Fnma(a, b, c) => RInst::Fnma(*a, *b, *c),
                    Inst::Rcp(a) => RInst::Rcp(*a),
                    Inst::Call(f, args) => RInst::Call(*f, args.clone()),
                    Inst::Const(c) => RInst::Const(*c),
                })
            })
            .collect::<Result<Vec<_>, ResolveError>>()?;
        Ok(RSeq { insts, result: seq.result })
    }

    fn resolve_nodes(&mut self, nodes: &[Node]) -> Result<Vec<RNode>, ResolveError> {
        nodes
            .iter()
            .map(|node| {
                Ok(match node {
                    Node::Store { target, seq } => {
                        let seq = self.resolve_seq(seq)?;
                        let target = match target {
                            StoreTarget::Var(name) => RTarget::Var(self.float_slot(name)),
                            StoreTarget::Arr(arr, idx) => {
                                RTarget::Arr(self.array_slot(arr)?, self.int_slot(idx))
                            }
                        };
                        RNode::Store { target, seq }
                    }
                    Node::If { lhs, op, rhs, body } => RNode::If {
                        lhs: self.resolve_seq(lhs)?,
                        op: *op,
                        rhs: self.resolve_seq(rhs)?,
                        body: self.resolve_nodes(body)?,
                    },
                    Node::For { var, bound, body } => {
                        let bound = self.int_slot(bound);
                        let var = self.int_slot(var);
                        RNode::For { var, bound, body: self.resolve_nodes(body)? }
                    }
                })
            })
            .collect()
    }
}

/// Resolve a kernel's names to dense slots.
pub fn resolve(ir: &KernelIr) -> Result<ResolvedKernel, ResolveError> {
    let mut r = Resolver {
        floats: HashMap::new(),
        ints: HashMap::new(),
        arrays: HashMap::new(),
        float_names: Vec::new(),
        array_names: Vec::new(),
    };
    let mut param_slots = Vec::with_capacity(ir.params.len());
    for p in &ir.params {
        let slot = match p.ty {
            ParamType::Float => ParamSlot::Float(r.float_slot(&p.name)),
            ParamType::Int => ParamSlot::Int(r.int_slot(&p.name)),
            ParamType::FloatArray => {
                let s = r.array_names.len();
                r.arrays.insert(p.name.clone(), s);
                r.array_names.push(p.name.clone());
                ParamSlot::Array(s)
            }
        };
        param_slots.push(slot);
    }
    let body = r.resolve_nodes(&ir.body)?;
    let comp_slot = *r.floats.get("comp").ok_or(ResolveError::NoComp)?;
    Ok(ResolvedKernel {
        param_slots,
        n_floats: r.float_names.len(),
        n_ints: r.ints.len(),
        n_arrays: r.array_names.len(),
        float_names: r.float_names,
        array_names: r.array_names,
        comp_slot,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, OptLevel, Toolchain};
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::Precision;

    fn resolved(seed: u64, i: u64, opt: OptLevel) -> ResolvedKernel {
        let p = generate_program(&GenConfig::varity_default(Precision::F64), seed, i);
        let ir = compile(&p, Toolchain::Nvcc, opt, false);
        resolve(&ir).expect("generated kernels resolve")
    }

    #[test]
    fn every_generated_kernel_resolves() {
        for i in 0..50 {
            for opt in [OptLevel::O0, OptLevel::O3, OptLevel::O3Fm] {
                let r = resolved(5, i, opt);
                assert!(r.n_floats >= 1);
                assert_eq!(r.float_names.len(), r.n_floats);
                assert_eq!(r.param_slots.len(), 11); // comp + int + 8 floats + 1 array
            }
        }
    }

    #[test]
    fn comp_is_slot_zero_by_signature_order() {
        let r = resolved(5, 0, OptLevel::O0);
        assert_eq!(r.comp_slot, 0, "comp is the first parameter");
        assert_eq!(r.float_names[0], "comp");
    }

    #[test]
    fn param_slots_cover_all_kinds() {
        let r = resolved(5, 0, OptLevel::O0);
        assert!(matches!(r.param_slots[0], ParamSlot::Float(0)));
        assert!(matches!(r.param_slots[1], ParamSlot::Int(_)));
        assert!(matches!(r.param_slots.last(), Some(ParamSlot::Array(_))));
    }

    #[test]
    fn slots_are_dense_and_unique() {
        let r = resolved(7, 3, OptLevel::O3);
        let mut seen = std::collections::HashSet::new();
        for name in &r.float_names {
            assert!(seen.insert(name.clone()), "duplicate float name {name}");
        }
    }

    #[test]
    fn unknown_array_is_an_error() {
        use crate::ir::*;
        use progen::ast::Param;
        let ir = KernelIr {
            program_id: "t".into(),
            precision: Precision::F64,
            params: vec![Param { name: "comp".into(), ty: ParamType::Float }],
            body: vec![Node::Store {
                target: StoreTarget::Var("comp".into()),
                seq: InstSeq {
                    insts: vec![Inst::ReadArr("ghost".into(), "i".into())],
                    result: Operand::Inst(0),
                },
            }],
            flags: CompileFlags::default(),
        };
        assert_eq!(resolve(&ir).unwrap_err(), ResolveError::UnknownName("ghost".into()));
    }

    #[test]
    fn kernel_without_comp_is_rejected() {
        use crate::ir::*;
        use progen::ast::Param;
        let ir = KernelIr {
            program_id: "t".into(),
            precision: Precision::F64,
            params: vec![Param { name: "x".into(), ty: ParamType::Float }],
            body: vec![],
            flags: CompileFlags::default(),
        };
        assert_eq!(resolve(&ir).unwrap_err(), ResolveError::NoComp);
    }
}
