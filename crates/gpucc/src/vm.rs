//! The compiled bytecode execution tier.
//!
//! [`compile_kernel`] lowers a [`KernelIr`] through [`crate::resolve`]
//! into the flat, register-allocated bytecode of [`crate::bytecode`];
//! [`execute_compiled`] / [`execute_batch`] then run it with a dispatch
//! loop over a contiguous register file. Compile once, run many: the
//! campaign and the oracle both execute every compiled kernel against
//! several inputs, and the batch API reuses all execution scratch
//! (registers, slot files, arrays) across those runs.
//!
//! **The interpreter remains the reference executor.** The vm is proved
//! against it by construction (identical DAZ/FTZ placement, exception
//! reconstruction, budget accounting and error strings), by the
//! differential proptest battery (`tests/vm_differential.rs`), and at
//! runtime by [`ExecTier::Differential`], which runs both tiers on every
//! execution and panics on any bit difference — the repo's
//! translation-validation pattern applied to its own executor.
//!
//! Telemetry mirrors the interpreter under a `vm.` namespace:
//! `vm.execs`/`vm.ops` counters, `vm.execns`/`vm.nsperop` histograms, a
//! `vm.exec` trace event, and `vm.mathcall.*`/`vm.fpexc.*` tallies, so
//! `analyze --profile` can show both tiers side by side.

use crate::bytecode::{self, Code, FmaKind, Op, Src};
use crate::cost;
use crate::interp::{DeviceFloat, ExecBudget, ExecError, ExecResult, ExecutableKernel};
use crate::ir::KernelIr;
use crate::resolve::{resolve, ParamSlot, ResolveError};
use fpcore::exceptions::{ArithOp, ExceptionFlags};
use fpcore::ftz::FtzMode;
use gpusim::mathlib::MathFunc;
use gpusim::Device;
use progen::ast::{BinOp, Precision};
use progen::inputs::{InputSet, InputValue, ARRAY_LEN};
use std::time::Instant;

/// Which executor runs compiled kernels.
///
/// Not part of any serialized configuration on purpose: campaign configs
/// are compared for identity when merging shards and persisted in
/// checkpoints, and a provably bit-identical executor choice must not
/// split those identities. The tier is threaded as a runtime parameter
/// instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecTier {
    /// The tree-walking reference interpreter ([`crate::interp`]).
    Interp,
    /// The compiled bytecode vm (this module) — the fast default.
    #[default]
    Vm,
    /// Run both tiers on every execution, panic on any bit difference,
    /// and return the vm result. The panic is contained by the campaign's
    /// per-test isolation, so a vm bug surfaces as an attributed fault,
    /// not a wrong table.
    Differential,
}

impl ExecTier {
    /// All tiers, for exhaustive tests.
    pub const ALL: [ExecTier; 3] = [ExecTier::Interp, ExecTier::Vm, ExecTier::Differential];

    /// The CLI-facing name.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Interp => "interp",
            ExecTier::Vm => "vm",
            ExecTier::Differential => "differential",
        }
    }
}

impl std::str::FromStr for ExecTier {
    type Err = String;

    fn from_str(s: &str) -> Result<ExecTier, String> {
        match s {
            "interp" => Ok(ExecTier::Interp),
            "vm" => Ok(ExecTier::Vm),
            "differential" => Ok(ExecTier::Differential),
            other => Err(format!("unknown exec tier {other:?} (use interp|vm|differential)")),
        }
    }
}

/// A kernel compiled to bytecode: lower once, execute many times.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The source IR's identity.
    pub program_id: String,
    /// Kernel precision.
    pub precision: Precision,
    /// Compilation flags (fast math, level).
    pub flags: crate::ir::CompileFlags,
    params: Vec<progen::ast::Param>,
    param_slots: Vec<ParamSlot>,
    n_floats: usize,
    n_ints: usize,
    n_arrays: usize,
    float_names: Vec<String>,
    array_names: Vec<String>,
    comp_slot: usize,
    code: Code,
}

impl CompiledKernel {
    /// Number of bytecode operations (static size of the lowered body).
    pub fn op_count(&self) -> usize {
        self.code.ops.len()
    }

    /// Register-file size the dispatch loop provisions.
    pub fn register_count(&self) -> usize {
        self.code.n_regs
    }
}

/// Compile a kernel to bytecode (the vm analogue of
/// [`crate::interp::prepare`]; fails on the same malformed kernels).
pub fn compile_kernel(ir: &KernelIr) -> Result<CompiledKernel, ExecError> {
    let resolved = resolve(ir).map_err(|e| match e {
        ResolveError::UnknownName(n) => ExecError::UnknownVar(n),
        ResolveError::NoComp => ExecError::UnknownVar("comp".into()),
    })?;
    let code = bytecode::lower(&resolved, ir.precision, ir.flags);
    Ok(CompiledKernel {
        program_id: ir.program_id.clone(),
        precision: ir.precision,
        flags: ir.flags,
        params: ir.params.clone(),
        param_slots: resolved.param_slots,
        n_floats: resolved.n_floats,
        n_ints: resolved.n_ints,
        n_arrays: resolved.n_arrays,
        float_names: resolved.float_names,
        array_names: resolved.array_names,
        comp_slot: resolved.comp_slot,
        code,
    })
}

/// Compile and execute in one call under the default budget (the vm
/// analogue of [`crate::interp::execute`]).
pub fn execute(ir: &KernelIr, device: &Device, inputs: &InputSet) -> Result<ExecResult, ExecError> {
    let kernel = compile_kernel(ir)?;
    execute_compiled(&kernel, device, inputs)
}

/// Execute a compiled kernel under the default budget.
pub fn execute_compiled(
    kernel: &CompiledKernel,
    device: &Device,
    inputs: &InputSet,
) -> Result<ExecResult, ExecError> {
    execute_compiled_budgeted(kernel, device, inputs, ExecBudget::default())
}

/// Execute a compiled kernel under an explicit fuel budget.
pub fn execute_compiled_budgeted(
    kernel: &CompiledKernel,
    device: &Device,
    inputs: &InputSet,
    budget: ExecBudget,
) -> Result<ExecResult, ExecError> {
    match kernel.precision {
        Precision::F64 => run_vm(kernel, device, inputs, budget, &mut VmState::<f64>::new(kernel)),
        Precision::F32 => run_vm(kernel, device, inputs, budget, &mut VmState::<f32>::new(kernel)),
    }
}

/// Execute a compiled kernel against a batch of inputs, reusing all
/// execution scratch across runs — the compile-once/run-many entry the
/// campaign and oracle loops amortize compilation through.
pub fn execute_batch(
    kernel: &CompiledKernel,
    device: &Device,
    inputs: &[InputSet],
    budget: ExecBudget,
) -> Vec<Result<ExecResult, ExecError>> {
    match kernel.precision {
        Precision::F64 => {
            let mut state = VmState::<f64>::new(kernel);
            inputs.iter().map(|i| run_vm(kernel, device, i, budget, &mut state)).collect()
        }
        Precision::F32 => {
            let mut state = VmState::<f32>::new(kernel);
            inputs.iter().map(|i| run_vm(kernel, device, i, budget, &mut state)).collect()
        }
    }
}

/// Execute both tiers on the same input and panic on any difference in
/// result bits, exceptions, cost, steps or error classification. Returns
/// the vm result. Wall-clock timeouts are exempt from comparison (they
/// are inherently racy between two separate runs); instruction-budget
/// `StepLimit`s are deterministic and must match exactly.
pub fn execute_differential(
    interp_kernel: &ExecutableKernel,
    vm_kernel: &CompiledKernel,
    device: &Device,
    inputs: &InputSet,
    budget: ExecBudget,
) -> Result<ExecResult, ExecError> {
    let reference = crate::interp::execute_prepared_budgeted(interp_kernel, device, inputs, budget);
    let fast = execute_compiled_budgeted(vm_kernel, device, inputs, budget);
    let timeoutish = matches!(reference, Err(ExecError::Timeout { .. }))
        || matches!(fast, Err(ExecError::Timeout { .. }));
    if !timeoutish && reference != fast {
        panic!(
            "vm/interp mismatch on `{}`: interp {reference:?}, vm {fast:?} \
             (the compiled vm tier diverged from the reference interpreter)",
            vm_kernel.program_id
        );
    }
    fast
}

/// Compile-per-call convenience: execute `ir` under `tier` with the
/// default budget. Used where a single execution is needed (the oracle's
/// stage walker precompiles instead when it loops over inputs).
pub fn execute_ir_tier(
    tier: ExecTier,
    ir: &KernelIr,
    device: &Device,
    inputs: &InputSet,
) -> Result<ExecResult, ExecError> {
    match tier {
        ExecTier::Interp => crate::interp::execute(ir, device, inputs),
        ExecTier::Vm => execute(ir, device, inputs),
        ExecTier::Differential => {
            let ik = crate::interp::prepare(ir)?;
            let vk = compile_kernel(ir)?;
            execute_differential(&ik, &vk, device, inputs, ExecBudget::default())
        }
    }
}

/// Reusable execution scratch: the register file plus the slot files the
/// interpreter allocates fresh per run.
struct VmState<T> {
    regs: Vec<T>,
    scalars: Vec<Option<T>>,
    ints: Vec<Option<i64>>,
    arrays: Vec<Vec<T>>,
    limits: Vec<i64>,
}

impl<T: DeviceFloat> VmState<T> {
    fn new(kernel: &CompiledKernel) -> VmState<T> {
        VmState {
            regs: vec![T::ZERO; kernel.code.n_regs],
            scalars: vec![None; kernel.n_floats],
            ints: vec![None; kernel.n_ints],
            arrays: vec![Vec::new(); kernel.n_arrays],
            limits: vec![0; kernel.code.n_limits],
        }
    }

    fn reset(&mut self) {
        self.scalars.fill(None);
        self.ints.fill(None);
        // arrays are rebound (clear + resize in place) by the parameter
        // binding loop; registers and limits are write-before-read.
    }
}

/// Result FTZ for binary arithmetic — the op the `vm-inject` feature's
/// `DropFtzFlush` bug disables.
#[inline]
fn ftz_bin_result<T: DeviceFloat>(r: T, ftz: FtzMode) -> T {
    #[cfg(feature = "vm-inject")]
    if crate::vm_inject::armed() == crate::vm_inject::VmBug::DropFtzFlush {
        return r;
    }
    r.apply_ftz(ftz)
}

fn int_index(ints: &[Option<i64>], idx: usize) -> Result<usize, ExecError> {
    let i = ints[idx].ok_or_else(|| ExecError::UnknownVar("index".into()))?;
    usize::try_from(i).map_err(|_| ExecError::OutOfBounds("index".into()))
}

fn run_vm<T: DeviceFloat>(
    kernel: &CompiledKernel,
    device: &Device,
    inputs: &InputSet,
    budget: ExecBudget,
    state: &mut VmState<T>,
) -> Result<ExecResult, ExecError> {
    #[cfg(feature = "chaos")]
    crate::chaos::maybe_panic(&kernel.program_id);
    if inputs.values.len() != kernel.params.len() {
        return Err(ExecError::BadInputs(format!(
            "{} inputs for {} parameters",
            inputs.values.len(),
            kernel.params.len()
        )));
    }
    let env = device.fp_env(kernel.flags.fast_math);
    let ftz = T::ftz_mode(&env);
    state.reset();
    let VmState { regs, scalars, ints, arrays, limits } = state;
    for ((param, value), slot) in kernel.params.iter().zip(&inputs.values).zip(&kernel.param_slots)
    {
        match (slot, value) {
            (ParamSlot::Float(s), InputValue::Float(v)) => {
                scalars[*s] = Some(T::from_f64(*v));
            }
            (ParamSlot::Int(s), InputValue::Int(v)) => {
                ints[*s] = Some(*v);
            }
            (ParamSlot::Array(s), InputValue::ArrayFill(v)) => {
                let a = &mut arrays[*s];
                a.clear();
                a.resize(ARRAY_LEN, T::from_f64(*v));
            }
            (_, val) => {
                return Err(ExecError::BadInputs(format!(
                    "parameter {} of type {:?} got {val:?}",
                    param.name, param.ty
                )))
            }
        }
    }

    let mut exceptions = ExceptionFlags::new();
    let mut cost_slots: u64 = 0;
    let mut steps: u64 = 0;
    let mut math_calls = [0u32; MathFunc::COUNT];
    let deadline =
        budget.max_wall_ms.map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
    let exec_t = if obs::enabled() { Some(Instant::now()) } else { None };

    // One budget step per value op, checked *before* the op executes —
    // the same retire/check/poll order as the interpreter, so StepLimit
    // and (deterministic) Timeout trip at identical step counts.
    macro_rules! bump {
        ($c:expr) => {{
            steps += 1;
            if steps > budget.max_steps {
                return Err(ExecError::StepLimit { budget: budget.max_steps, steps });
            }
            if steps & crate::interp::DEADLINE_POLL_MASK == 0 {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(ExecError::Timeout {
                            budget_ms: budget.max_wall_ms.unwrap_or(0),
                            steps,
                        });
                    }
                }
            }
            cost_slots += $c as u64;
        }};
    }
    macro_rules! val {
        ($s:expr) => {
            match $s {
                Src::Reg(r) => regs[r as usize],
                Src::Const(c) => T::from_f64(c),
            }
        };
    }

    let ops = &kernel.code.ops;
    let n_ops = ops.len();
    let mut pc = 0usize;
    while pc < n_ops {
        match &ops[pc] {
            Op::Const { dst, v } => {
                bump!(0u8);
                regs[*dst as usize] = T::from_f64(*v);
            }
            Op::ReadVar { dst, slot } => {
                bump!(1u8);
                regs[*dst as usize] = scalars[*slot as usize].ok_or_else(|| {
                    ExecError::UnknownVar(kernel.float_names[*slot as usize].clone())
                })?;
            }
            Op::ReadIntAsFloat { dst, slot } => {
                bump!(1u8);
                let i = ints[*slot as usize].ok_or_else(|| ExecError::UnknownVar("int".into()))?;
                regs[*dst as usize] = T::from_f64(i as f64);
            }
            Op::ReadArr { dst, arr, idx } => {
                bump!(4u8);
                let i = int_index(ints, *idx as usize)?;
                regs[*dst as usize] = *arrays[*arr as usize].get(i).ok_or_else(|| {
                    ExecError::OutOfBounds(kernel.array_names[*arr as usize].clone())
                })?;
            }
            Op::ReadThreadIdx { dst } => {
                bump!(1u8);
                regs[*dst as usize] = T::from_f64(0.0);
            }
            Op::Neg { dst, a } => {
                bump!(1u8);
                regs[*dst as usize] = -val!(*a);
            }
            Op::Bin { dst, op, a, b, cost: c } => {
                bump!(*c);
                let x = val!(*a).apply_daz(ftz);
                let y = val!(*b).apply_daz(ftz);
                let (r, aop) = match op {
                    BinOp::Add => (x + y, ArithOp::Add),
                    BinOp::Sub => (x - y, ArithOp::Sub),
                    BinOp::Mul => (x * y, ArithOp::Mul),
                    BinOp::Div => (x / y, ArithOp::Div),
                };
                exceptions.merge(T::detect_exceptions(aop, x, y, r));
                regs[*dst as usize] = ftz_bin_result(r, ftz);
            }
            Op::Fma { dst, kind, a, b, c, cost: fc } => {
                bump!(*fc);
                let x = val!(*a).apply_daz(ftz);
                let y = val!(*b).apply_daz(ftz);
                let z = val!(*c).apply_daz(ftz);
                let r = match kind {
                    FmaKind::Fma => x.mul_add(y, z),
                    FmaKind::Fms => x.mul_add(y, -z),
                    FmaKind::Fnma => (-x).mul_add(y, z),
                };
                crate::interp::nonbin_exceptions(&[x, y, z], r, &mut exceptions);
                regs[*dst as usize] = r.apply_ftz(ftz);
            }
            Op::Rcp { dst, a } => {
                bump!(2u8);
                let x = val!(*a);
                let r = T::rcp(x);
                crate::interp::nonbin_exceptions(&[x], r, &mut exceptions);
                regs[*dst as usize] = r;
            }
            Op::Call { dst, f, a, b, cost: cc } => {
                bump!(*cc);
                math_calls[f.index()] += 1;
                let x = match a {
                    Some(o) => val!(*o).apply_daz(ftz),
                    None => T::ZERO,
                };
                let y = match b {
                    Some(o) => val!(*o).apply_daz(ftz),
                    None => T::ZERO,
                };
                let r = T::math_call(device, kernel.flags.fast_math, *f, x, y);
                crate::interp::nonbin_exceptions(&[x, y], r, &mut exceptions);
                regs[*dst as usize] = r.apply_ftz(ftz);
            }
            Op::StoreVar { slot, src } => {
                scalars[*slot as usize] = Some(val!(*src));
            }
            Op::StoreArr { arr, idx, src } => {
                let v = val!(*src);
                let i = int_index(ints, *idx as usize)?;
                let a = &mut arrays[*arr as usize];
                *a.get_mut(i).ok_or_else(|| {
                    ExecError::OutOfBounds(kernel.array_names[*arr as usize].clone())
                })? = v;
                cost_slots += 4;
            }
            Op::Branch { op, a, b, skip_to } => {
                let x = val!(*a);
                let y = val!(*b);
                cost_slots += 2;
                if !crate::interp::compare(*op, x, y) {
                    pc = *skip_to as usize;
                    continue;
                }
            }
            Op::LoopInit { var, bound, limit, exit_to } => {
                let n = ints[*bound as usize]
                    .ok_or_else(|| ExecError::UnknownVar("loop bound".into()))?;
                let n = n.clamp(0, ARRAY_LEN as i64);
                if n <= 0 {
                    pc = *exit_to as usize;
                    continue;
                }
                limits[*limit as usize] = n;
                ints[*var as usize] = Some(0);
                cost_slots += cost::LOOP_OVERHEAD;
            }
            Op::LoopBack { var, limit, back_to } => {
                let i = ints[*var as usize].unwrap_or(0) + 1;
                if i < limits[*limit as usize] {
                    ints[*var as usize] = Some(i);
                    cost_slots += cost::LOOP_OVERHEAD;
                    pc = *back_to as usize;
                    continue;
                }
            }
        }
        pc += 1;
    }

    if obs::enabled() {
        obs::add("vm.execs", 1);
        obs::add("vm.ops", steps);
        if let Some(t) = exec_t {
            let ns = t.elapsed().as_nanos() as u64;
            obs::record("vm.execns", ns);
            obs::record("vm.nsperop", ns / steps.max(1));
            if obs::trace::active() {
                obs::trace::emit(
                    "vm.exec",
                    t,
                    ns,
                    vec![("program", kernel.program_id.as_str().into()), ("steps", steps.into())],
                );
            }
        }
        let vendor = device.kind.short();
        for (i, &n) in math_calls.iter().enumerate() {
            if n > 0 {
                let f = MathFunc::ALL[i];
                obs::add(&format!("vm.mathcall.{vendor}.{}", f.c_name()), n as u64);
            }
        }
        for e in exceptions.iter() {
            obs::add(&format!("vm.fpexc.{e}"), 1);
        }
    }

    let value = scalars[kernel.comp_slot].ok_or_else(|| ExecError::UnknownVar("comp".into()))?;
    Ok(ExecResult { value: crate::interp::wrap_value(value), exceptions, cost_slots, steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::pipeline::{compile, OptLevel, Toolchain};
    use gpusim::DeviceKind;
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::inputs::generate_inputs;

    fn nv() -> Device {
        Device::new(DeviceKind::NvidiaLike)
    }

    fn amd() -> Device {
        Device::new(DeviceKind::AmdLike)
    }

    #[test]
    fn tier_parses_and_round_trips() {
        for tier in ExecTier::ALL {
            assert_eq!(tier.label().parse::<ExecTier>().unwrap(), tier);
        }
        assert!("jit".parse::<ExecTier>().is_err());
        assert_eq!(ExecTier::default(), ExecTier::Vm);
    }

    #[test]
    fn vm_matches_interp_on_generated_programs() {
        let cfg = GenConfig::varity_default(Precision::F64);
        for i in 0..40 {
            let p = generate_program(&cfg, 91, i);
            let inputs = generate_inputs(&p, 91, 2);
            for tc in [Toolchain::Nvcc, Toolchain::Hipcc] {
                for opt in OptLevel::ALL {
                    let ir = compile(&p, tc, opt, false);
                    let device = if tc == Toolchain::Nvcc { nv() } else { amd() };
                    let vk = compile_kernel(&ir).unwrap();
                    for input in &inputs {
                        let want = interp::execute(&ir, &device, input);
                        let got = execute_compiled(&vk, &device, input);
                        assert_eq!(want, got, "program {i} {tc:?} {opt:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn step_limit_parity_with_interp() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, 91, 0);
        let inputs = generate_inputs(&p, 91, 1);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O2, false);
        let ik = interp::prepare(&ir).unwrap();
        let vk = compile_kernel(&ir).unwrap();
        for max_steps in [1, 2, 5, 17, 100] {
            let budget = ExecBudget::steps(max_steps);
            let want = interp::execute_prepared_budgeted(&ik, &nv(), &inputs[0], budget);
            let got = execute_compiled_budgeted(&vk, &nv(), &inputs[0], budget);
            assert_eq!(want, got, "budget {max_steps}");
        }
    }

    #[test]
    fn zero_wall_budget_times_out_like_interp() {
        use progen::ast::*;
        // Nested loops retiring well past the 256-step poll interval.
        let p = Program {
            id: "t".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body: vec![Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![Stmt::For {
                    var: "j".into(),
                    bound: "var_1".into(),
                    body: vec![Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.0)),
                    }],
                }],
            }],
        };
        let input = InputSet {
            values: vec![InputValue::Float(0.0), InputValue::Int(16), InputValue::Float(1.0)],
        };
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let ik = interp::prepare(&ir).unwrap();
        let vk = compile_kernel(&ir).unwrap();
        let budget = ExecBudget { max_steps: interp::STEP_LIMIT, max_wall_ms: Some(0) };
        let want = interp::execute_prepared_budgeted(&ik, &nv(), &input, budget).unwrap_err();
        let got = execute_compiled_budgeted(&vk, &nv(), &input, budget).unwrap_err();
        assert_eq!(want, got);
        assert!(matches!(got, ExecError::Timeout { budget_ms: 0, .. }));
    }

    #[test]
    fn batch_matches_individual_runs() {
        let cfg = GenConfig::varity_default(Precision::F32);
        let p = generate_program(&cfg, 17, 3);
        let inputs = generate_inputs(&p, 17, 4);
        let ir = compile(&p, Toolchain::Hipcc, OptLevel::O3Fm, false);
        let vk = compile_kernel(&ir).unwrap();
        let batch = execute_batch(&vk, &amd(), &inputs, ExecBudget::default());
        assert_eq!(batch.len(), 4);
        for (input, got) in inputs.iter().zip(batch) {
            let single = execute_compiled(&vk, &amd(), input);
            assert_eq!(single, got);
            assert_eq!(interp::execute(&ir, &amd(), input), got);
        }
    }

    #[test]
    fn differential_agrees_on_clean_kernels() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, 5, 1);
        let inputs = generate_inputs(&p, 5, 2);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O3, false);
        let ik = interp::prepare(&ir).unwrap();
        let vk = compile_kernel(&ir).unwrap();
        for input in &inputs {
            let got = execute_differential(&ik, &vk, &nv(), input, ExecBudget::default());
            assert_eq!(got, interp::execute(&ir, &nv(), input));
        }
    }

    #[test]
    fn mismatched_inputs_report_identical_errors() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, 5, 0);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let vk = compile_kernel(&ir).unwrap();
        let bad = InputSet { values: vec![InputValue::Float(0.0)] };
        let want = interp::execute(&ir, &nv(), &bad).unwrap_err();
        let got = execute_compiled(&vk, &nv(), &bad).unwrap_err();
        assert_eq!(want.to_string(), got.to_string());
    }
}
