//! Deliberately broken vm lowering/execution for differential self-tests.
//!
//! The vm tier claims the differential machinery (the `vm_differential`
//! proptest, [`crate::vm::ExecTier::Differential`], and the oracle runner
//! executing through the vm) would catch a miscompiled bytecode kernel.
//! That claim needs negative tests: this module lets a test *arm* one of
//! two known bugs — each a realistic way a bytecode tier goes wrong —
//! and prove the harness catches and attributes them.
//!
//! The same two safety layers as [`crate::inject`] keep the bugs out of
//! production: the module only exists under the `vm-inject` cargo
//! feature (a dev-dependency of the self-tests, never a default), and
//! even when compiled in, every bug is **disarmed by default** — a
//! runtime [`arm`] call is required.
//!
//! Tests that arm a bug must serialize themselves (the switch is a
//! global) and disarm on all exit paths.

use std::sync::atomic::{AtomicU8, Ordering};

/// A deliberately injected vm bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmBug {
    /// Nothing armed (the default).
    None,
    /// Wrong register reuse: the lowering wires every multi-instruction
    /// sequence's result to register 0 instead of the register its result
    /// actually lives in — a classic linear-scan bookkeeping slip.
    RegisterClobber,
    /// The dispatch loop skips the FTZ result flush on binary arithmetic,
    /// so fast-math kernels keep subnormals the device would flush.
    DropFtzFlush,
}

static ARMED: AtomicU8 = AtomicU8::new(0);

fn encode(bug: VmBug) -> u8 {
    match bug {
        VmBug::None => 0,
        VmBug::RegisterClobber => 1,
        VmBug::DropFtzFlush => 2,
    }
}

/// Arm one bug. Affects every subsequent vm compile/execute in this
/// process until [`disarm`] is called.
pub fn arm(bug: VmBug) {
    ARMED.store(encode(bug), Ordering::SeqCst);
}

/// Disarm whatever is armed (restores correct vm behaviour).
pub fn disarm() {
    ARMED.store(0, Ordering::SeqCst);
}

/// The currently armed bug.
pub fn armed() -> VmBug {
    match ARMED.load(Ordering::SeqCst) {
        1 => VmBug::RegisterClobber,
        2 => VmBug::DropFtzFlush,
        _ => VmBug::None,
    }
}

/// Apply the [`VmBug::RegisterClobber`] bug to a lowered sequence result
/// (called from the bytecode lowerer, only when the feature is enabled).
pub(crate) fn clobber_seq_result(
    result: crate::bytecode::Src,
    n_insts: usize,
) -> crate::bytecode::Src {
    if armed() == VmBug::RegisterClobber && n_insts >= 2 {
        if let crate::bytecode::Src::Reg(r) = result {
            if r != 0 {
                return crate::bytecode::Src::Reg(0);
            }
        }
    }
    result
}
