//! Pass-semantics properties: the value-preserving passes (constant
//! folding, CSE, DCE) must not change any kernel's results on the same
//! toolchain and device — only the contraction/fast-math passes are
//! allowed to perturb floating-point behaviour.

use gpucc::interp::execute;
use gpucc::lower::lower;
use gpucc::passes::{const_fold::ConstFold, cse::Cse, dce::Dce, run_seq_pass};
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpusim::{Device, DeviceKind};
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;
use progen::Precision;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// const-fold + CSE + DCE alone are bitwise semantics-preserving.
    #[test]
    fn value_preserving_passes_do_not_change_results(
        seed in any::<u64>(),
        index in 0u64..300,
    ) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let program = generate_program(&cfg, seed, index);
        let inputs = generate_inputs(&program, seed, 3);
        let device = Device::new(DeviceKind::NvidiaLike);

        let baseline = lower(&program);
        let mut optimized = lower(&program);
        run_seq_pass(&mut optimized, &ConstFold);
        run_seq_pass(&mut optimized, &Cse);
        run_seq_pass(&mut optimized, &Dce);

        for input in &inputs {
            let a = execute(&baseline, &device, input);
            let b = execute(&optimized, &device, input);
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    prop_assert!(
                        a.value.bit_eq(&b.value),
                        "results differ: {} vs {}",
                        a.value.format_exact(),
                        b.value.format_exact()
                    );
                    // folding evaluates ops at compile time, so the
                    // optimized run may raise *fewer* exception flags —
                    // never more
                    for e in b.exceptions.iter() {
                        prop_assert!(
                            a.exceptions.is_set(e),
                            "optimized run raised {e} the baseline did not"
                        );
                    }
                    prop_assert!(b.steps <= a.steps, "optimization added work");
                }
                (Err(e), _) | (_, Err(e)) => prop_assert!(false, "exec error: {e}"),
            }
        }
    }

    /// passes never increase static instruction counts.
    #[test]
    fn optimized_kernels_are_not_larger(seed in any::<u64>(), index in 0u64..300) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let program = generate_program(&cfg, seed, index);
        for tc in Toolchain::ALL {
            let o0 = compile(&program, tc, OptLevel::O0, false);
            let o3 = compile(&program, tc, OptLevel::O3, false);
            prop_assert!(
                o3.inst_count() <= o0.inst_count(),
                "{tc}: O3 {} insts > O0 {}",
                o3.inst_count(),
                o0.inst_count()
            );
        }
    }

    /// O0 compilation is the identity on the lowered IR for non-hipified
    /// sources, for both toolchains.
    #[test]
    fn o0_is_plain_lowering(seed in any::<u64>(), index in 0u64..300) {
        let cfg = GenConfig::varity_default(Precision::F32);
        let program = generate_program(&cfg, seed, index);
        let plain = lower(&program);
        for tc in Toolchain::ALL {
            let o0 = compile(&program, tc, OptLevel::O0, false);
            prop_assert_eq!(&o0.body, &plain.body, "{}", tc);
        }
    }
}
