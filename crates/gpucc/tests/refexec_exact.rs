//! Property tests: the double-double reference executor degenerates to
//! strict IEEE arithmetic exactly where it must.
//!
//! For a kernel that performs a *single* `+`/`-`/`*` between two program
//! values, the double-double result is error-free (Dekker/Knuth two-sum
//! and two-product capture the IEEE rounding error exactly), so the final
//! single rounding of the truth equals the one rounding the interpreter
//! performs — the reference executor must bit-agree with the quirkless
//! interpreter on **every** input bit pattern, NaN payloads, signed
//! zeros, subnormals, infinities, and overflow included (non-finite
//! operands degrade to the plain f64 op inside [`fpcore::dd`]).
//!
//! This is the degenerate anchor of the truth lattice: where one
//! operation is the whole kernel, "correctly rounded from the true
//! value" and "what strict IEEE hardware does" coincide, and the two
//! executors may not differ by even one bit.

use gpucc::interp::{execute_prepared_budgeted, prepare, ExecBudget};
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpucc::refexec::execute_reference_budgeted;
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::{AssignOp, Expr, LValue, Param, ParamType, Precision, Program, Stmt};
use progen::inputs::{InputSet, InputValue};
use proptest::prelude::*;

/// `comp <op>= var_2;` — the one-operation kernel where truth is exact.
fn single_op_program(precision: Precision, op: AssignOp) -> Program {
    Program {
        id: "refexec_exact".into(),
        precision,
        params: vec![
            Param { name: "comp".into(), ty: ParamType::Float },
            Param { name: "var_2".into(), ty: ParamType::Float },
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op,
            value: Expr::Var("var_2".into()),
        }],
    }
}

/// Execute both ways and return `(interp_bits, reference_bits)`.
fn both_bits(precision: Precision, op: AssignOp, a: f64, b: f64) -> (u64, u64) {
    let program = single_op_program(precision, op);
    let ir = compile(&program, Toolchain::Nvcc, OptLevel::O0, false);
    let kernel = prepare(&ir).expect("single-op kernel resolves");
    let quirkless = Device::with_quirks(DeviceKind::NvidiaLike, QuirkSet::none());
    let input = InputSet { values: vec![InputValue::Float(a), InputValue::Float(b)] };
    let budget = ExecBudget::default();
    let interp =
        execute_prepared_budgeted(&kernel, &quirkless, &input, budget).expect("interp runs");
    let truth = execute_reference_budgeted(&kernel, &input, budget).expect("reference runs");
    (interp.value.bits(), truth.value.bits())
}

const OPS: [AssignOp; 3] = [AssignOp::AddAssign, AssignOp::SubAssign, AssignOp::MulAssign];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// FP64: every f64 bit pattern, every error-free single op.
    #[test]
    fn f64_single_op_truth_is_bit_identical_to_strict_ieee(
        a_bits in any::<u64>(),
        b_bits in any::<u64>(),
        which in 0usize..3,
    ) {
        let (a, b) = (f64::from_bits(a_bits), f64::from_bits(b_bits));
        let (interp, truth) = both_bits(Precision::F64, OPS[which], a, b);
        prop_assert_eq!(
            interp, truth,
            "op {:?} on {a:?} ({a_bits:#018x}) and {b:?} ({b_bits:#018x})", OPS[which]
        );
    }

    /// FP32: inputs round through f32 first on both sides; the truth's
    /// one rounding back to f32 must land on the strict IEEE f32 result.
    #[test]
    fn f32_single_op_truth_is_bit_identical_to_strict_ieee(
        a_bits in any::<u32>(),
        b_bits in any::<u32>(),
        which in 0usize..3,
    ) {
        let (a, b) = (f32::from_bits(a_bits), f32::from_bits(b_bits));
        let (interp, truth) = both_bits(Precision::F32, OPS[which], f64::from(a), f64::from(b));
        prop_assert_eq!(
            interp, truth,
            "op {:?} on {a:?} ({a_bits:#010x}) and {b:?} ({b_bits:#010x})", OPS[which]
        );
    }
}

#[test]
fn the_classic_counterexamples_agree_too() {
    // hand-picked pairs that defeat naive extended-precision schemes:
    // cancellation to a subnormal, double-rounding bait (Dekker's split
    // boundary), overflow, and -0.0 preservation
    let cases: [(f64, f64); 6] = [
        (1.0 + f64::EPSILON, -1.0),
        (4.5e-308, -4.4999999999e-308),
        (1.7e308, 1.6e308),
        (-0.0, 0.0),
        (f64::MIN_POSITIVE, f64::MIN_POSITIVE / 2.0),
        (1.0000000000000002, 0.9999999999999999),
    ];
    for op in OPS {
        for (a, b) in cases {
            let (interp, truth) = both_bits(Precision::F64, op, a, b);
            assert_eq!(interp, truth, "{op:?} on {a:e} / {b:e}");
        }
    }
}
