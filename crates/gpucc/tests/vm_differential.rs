//! The differential battery that proves the compiled vm tier bit-identical
//! to the reference interpreter.
//!
//! Every property sweeps generated programs across **both toolchains and
//! all five optimization levels**, because the vm executes post-pass IR:
//! a lowering bug may only surface after FMA contraction rewires operand
//! shapes, or under fast-math FTZ. Inputs are biased toward the values
//! where executors classically diverge — NaN payloads, signed zeros,
//! denormals under FTZ, and infinities — and equality is *bitwise*
//! ([`gpucc::interp::ExecResult`]'s `PartialEq` compares NaN payloads and
//! distinguishes `-0.0` from `0.0`).
//!
//! Budget classification parity matters as much as value parity: a
//! campaign report serializes `ExecError` display strings, so the vm must
//! hit `StepLimit { budget, steps }` on the *same step* with the *same
//! message*, or a resumed `--exec-tier vm` checkpoint would not be
//! byte-identical to an interp run.

use gpucc::interp::{self, ExecBudget};
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpucc::vm;
use gpusim::{Device, DeviceKind};
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::{generate_inputs, InputValue};
use progen::{InputSet, Precision};
use proptest::prelude::*;

fn device_for(tc: Toolchain) -> Device {
    match tc {
        Toolchain::Nvcc => Device::new(DeviceKind::NvidiaLike),
        Toolchain::Hipcc => Device::new(DeviceKind::AmdLike),
    }
}

/// The float values executors classically disagree on: quiet NaN with a
/// non-default payload, signed zeros, denormals in both precisions' FTZ
/// ranges, infinities, and magnitudes that overflow f32 but not f64.
const SPECIALS: [f64; 10] = [
    f64::NAN,
    -1.5,
    0.0,
    -0.0,
    f64::INFINITY,
    f64::NEG_INFINITY,
    1.0e-310, // f64 subnormal
    1.0e-40,  // subnormal once narrowed to f32
    1.0e308,
    3.5e38, // finite in f64, overflows f32
];

/// Rewrite the float slots of `base` with special values, rotating the
/// starting point so successive `which` values cover different mixes.
/// `which == 0` additionally plants a non-default NaN payload.
fn specialized(base: &InputSet, which: usize) -> InputSet {
    let mut out = base.clone();
    let mut i = which;
    for v in &mut out.values {
        match v {
            InputValue::Float(f) | InputValue::ArrayFill(f) => {
                *f = SPECIALS[i % SPECIALS.len()];
                i = i.wrapping_mul(7).wrapping_add(3);
            }
            InputValue::Int(_) => {}
        }
    }
    if which == 0 {
        for v in &mut out.values {
            if let InputValue::Float(f) = v {
                *f = f64::from_bits(0x7FF8_0000_0000_1234);
                break;
            }
        }
    }
    out
}

fn input_pool(program: &progen::Program, seed: u64) -> Vec<InputSet> {
    let mut pool = generate_inputs(program, seed, 2);
    let base = pool[0].clone();
    for which in 0..4 {
        pool.push(specialized(&base, which));
    }
    pool
}

fn config_for(precision: Precision, shape: u8) -> GenConfig {
    match shape % 3 {
        0 => GenConfig::varity_default(precision),
        1 => GenConfig::extended(precision),
        _ => GenConfig::tiny(precision),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// vm results are bit-identical to interp across toolchains, levels,
    /// precisions, and special-value inputs — values, exception flags,
    /// cost slots, and step counts alike (`ExecResult` equality covers
    /// all four).
    #[test]
    fn vm_is_bit_identical_to_interp(
        seed in any::<u64>(),
        index in 0u64..200,
        shape in any::<u8>(),
        fp32 in any::<bool>(),
    ) {
        let precision = if fp32 { Precision::F32 } else { Precision::F64 };
        let cfg = config_for(precision, shape);
        let program = generate_program(&cfg, seed, index);
        let pool = input_pool(&program, seed);
        for tc in Toolchain::ALL {
            let device = device_for(tc);
            for level in OptLevel::ALL {
                let ir = compile(&program, tc, level, false);
                let ek = interp::prepare(&ir).expect("interp prepare");
                let ck = vm::compile_kernel(&ir).expect("vm compile");
                for inputs in &pool {
                    let a = interp::execute_prepared_budgeted(
                        &ek, &device, inputs, ExecBudget::default());
                    let b = vm::execute_compiled_budgeted(
                        &ck, &device, inputs, ExecBudget::default());
                    prop_assert_eq!(
                        &a, &b,
                        "{} {} diverged on `{}`", tc, level.label(), ir.program_id);
                }
            }
        }
    }

    /// Under tight step budgets the vm trips `StepLimit` on exactly the
    /// same step as interp, with byte-identical `Display` output, and a
    /// zero wall-clock budget times out identically (the deadline poll
    /// sits on the same 256-step boundary in both executors).
    #[test]
    fn budget_classification_parity(
        seed in any::<u64>(),
        index in 0u64..200,
        max_steps in 1u64..96,
    ) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let program = generate_program(&cfg, seed, index);
        let pool = input_pool(&program, seed);
        for tc in Toolchain::ALL {
            let device = device_for(tc);
            for level in [OptLevel::O0, OptLevel::O3Fm] {
                let ir = compile(&program, tc, level, false);
                let ek = interp::prepare(&ir).expect("interp prepare");
                let ck = vm::compile_kernel(&ir).expect("vm compile");
                for inputs in &pool {
                    for budget in [
                        ExecBudget { max_steps, max_wall_ms: None },
                        ExecBudget { max_steps: u64::MAX, max_wall_ms: Some(0) },
                    ] {
                        let a = interp::execute_prepared_budgeted(
                            &ek, &device, inputs, budget);
                        let b = vm::execute_compiled_budgeted(
                            &ck, &device, inputs, budget);
                        prop_assert_eq!(&a, &b, "budget {:?} classified differently", budget);
                        if let (Err(ea), Err(eb)) = (&a, &b) {
                            prop_assert_eq!(
                                ea.to_string(), eb.to_string(),
                                "error display diverged");
                        }
                    }
                }
            }
        }
    }

    /// The compile-once/run-many batch API returns exactly what
    /// one-at-a-time execution returns, in input order.
    #[test]
    fn batch_equals_individual_execution(
        seed in any::<u64>(),
        index in 0u64..200,
        fp32 in any::<bool>(),
    ) {
        let precision = if fp32 { Precision::F32 } else { Precision::F64 };
        let cfg = GenConfig::varity_default(precision);
        let program = generate_program(&cfg, seed, index);
        let pool = input_pool(&program, seed);
        let budget = ExecBudget { max_steps: 10_000, max_wall_ms: None };
        for tc in Toolchain::ALL {
            let device = device_for(tc);
            let ir = compile(&program, tc, OptLevel::O3Fm, false);
            let ck = vm::compile_kernel(&ir).expect("vm compile");
            let batch = vm::execute_batch(&ck, &device, &pool, budget);
            prop_assert_eq!(batch.len(), pool.len());
            for (i, got) in batch.iter().enumerate() {
                let single = vm::execute_compiled_budgeted(&ck, &device, &pool[i], budget);
                prop_assert_eq!(got, &single, "batch index {} diverged", i);
            }
        }
    }

    /// The differential tier itself returns the (already proven
    /// identical) vm result without panicking on clean kernels.
    #[test]
    fn differential_tier_is_quiet_on_clean_kernels(
        seed in any::<u64>(),
        index in 0u64..200,
    ) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let program = generate_program(&cfg, seed, index);
        let pool = input_pool(&program, seed);
        for tc in Toolchain::ALL {
            let device = device_for(tc);
            for level in OptLevel::ALL {
                let ir = compile(&program, tc, level, false);
                let ek = interp::prepare(&ir).expect("interp prepare");
                let ck = vm::compile_kernel(&ir).expect("vm compile");
                for inputs in &pool {
                    let d = vm::execute_differential(
                        &ek, &ck, &device, inputs, ExecBudget::default());
                    let v = vm::execute_compiled_budgeted(
                        &ck, &device, inputs, ExecBudget::default());
                    prop_assert_eq!(&d, &v);
                }
            }
        }
    }
}
