//! Simulated device definitions.

use crate::fpenv::FpEnv;
use crate::mathlib::{amd::AmdMathLib, nv::NvMathLib, MathLib};
use fpcore::ftz::FtzMode;
use serde::{Deserialize, Serialize};

/// Which vendor a simulated device models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA-like device (V100 analogue; the paper's Lassen system).
    NvidiaLike,
    /// AMD-like device (MI250X analogue; the paper's Tioga system).
    AmdLike,
}

impl DeviceKind {
    /// Both kinds, NVIDIA first (matching the paper's NVCC\HIPCC tables).
    pub const ALL: [DeviceKind; 2] = [DeviceKind::NvidiaLike, DeviceKind::AmdLike];

    /// Marketing-style name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::NvidiaLike => "NVIDIA-like (V100 sim)",
            DeviceKind::AmdLike => "AMD-like (MI250X sim)",
        }
    }

    /// Terse vendor tag for metric names (`nv` / `amd`).
    pub fn short(self) -> &'static str {
        match self {
            DeviceKind::NvidiaLike => "nv",
            DeviceKind::AmdLike => "amd",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Ablation toggles for the individual divergence mechanisms documented in
/// DESIGN.md §4. With everything off, the two devices produce bit-identical
/// results for every program — a property the integration tests verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuirkSet {
    /// Mechanism 1: contrasting `fmod` algorithms (exact vs chunked).
    pub fmod_algorithms: bool,
    /// Mechanism 2: NVIDIA-like `ceil` loses tiny positive values.
    pub ceil_tiny: bool,
    /// Mechanism 3: from-scratch NVIDIA transcendental kernels (last-ULP
    /// disagreements with the AMD/std kernels).
    pub transcendental_kernels: bool,
    /// Mechanism 4+5: fast-math intrinsic substitution (`__sinf` vs
    /// `V_SIN_F32`, pow special-case table dropped, …).
    pub fast_intrinsics: bool,
    /// Mechanism 6: vendor-asymmetric FTZ under fast math.
    pub ftz_fast_math: bool,
}

impl QuirkSet {
    /// Every divergence mechanism enabled (the paper's reality).
    pub fn all() -> Self {
        QuirkSet {
            fmod_algorithms: true,
            ceil_tiny: true,
            transcendental_kernels: true,
            fast_intrinsics: true,
            ftz_fast_math: true,
        }
    }

    /// Every mechanism disabled (devices become bit-identical).
    pub fn none() -> Self {
        QuirkSet {
            fmod_algorithms: false,
            ceil_tiny: false,
            transcendental_kernels: false,
            fast_intrinsics: false,
            ftz_fast_math: false,
        }
    }
}

impl Default for QuirkSet {
    fn default() -> Self {
        QuirkSet::all()
    }
}

/// A simulated GPU: vendor kind + divergence-mechanism configuration.
#[derive(Debug, Clone)]
pub struct Device {
    /// Vendor the device models.
    pub kind: DeviceKind,
    /// Active divergence mechanisms.
    pub quirks: QuirkSet,
    math_nv: NvMathLib,
    math_amd: AmdMathLib,
}

impl Device {
    /// A device with all divergence mechanisms active.
    pub fn new(kind: DeviceKind) -> Self {
        Self::with_quirks(kind, QuirkSet::all())
    }

    /// A device with a custom mechanism set (ablation).
    pub fn with_quirks(kind: DeviceKind, quirks: QuirkSet) -> Self {
        Device { kind, quirks, math_nv: NvMathLib { quirks }, math_amd: AmdMathLib { quirks } }
    }

    /// The vendor math library this device links kernels against.
    pub fn mathlib(&self) -> &dyn MathLib {
        match self.kind {
            DeviceKind::NvidiaLike => &self.math_nv,
            DeviceKind::AmdLike => &self.math_amd,
        }
    }

    /// The floating-point environment for a given fast-math setting.
    ///
    /// Both vendors are IEEE-compliant for the accurate paths. Under fast
    /// math the NVIDIA-like device flushes FP32 subnormals in both
    /// directions (`-ftz=true` is implied by `--use_fast_math`); the
    /// AMD-like device flushes results only. FP64 never flushes on either.
    pub fn fp_env(&self, fast_math: bool) -> FpEnv {
        if !fast_math || !self.quirks.ftz_fast_math {
            return FpEnv::ieee();
        }
        match self.kind {
            DeviceKind::NvidiaLike => FpEnv { ftz32: FtzMode::FLUSH, ftz64: FtzMode::IEEE },
            DeviceKind::AmdLike => FpEnv { ftz32: FtzMode::FTZ_ONLY, ftz64: FtzMode::IEEE },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mathlib::MathFunc;

    #[test]
    fn devices_expose_vendor_mathlibs() {
        let nv = Device::new(DeviceKind::NvidiaLike);
        let amd = Device::new(DeviceKind::AmdLike);
        assert_eq!(nv.mathlib().name(), "libdevice-sim");
        assert_eq!(amd.mathlib().name(), "ocml-sim");
    }

    #[test]
    fn quirkless_devices_agree_on_everything_sampled() {
        let nv = Device::with_quirks(DeviceKind::NvidiaLike, QuirkSet::none());
        let amd = Device::with_quirks(DeviceKind::AmdLike, QuirkSet::none());
        let args = [0.5f64, 1.5955e-125, 1e300, -3.3, 1e-310];
        for f in MathFunc::ALL {
            for &a in &args {
                for &b in &args {
                    let x = nv.mathlib().call_f64(f, a, b);
                    let y = amd.mathlib().call_f64(f, a, b);
                    assert!(
                        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                        "{f}({a},{b}): nv={x} amd={y}"
                    );
                }
            }
        }
    }

    #[test]
    fn quirky_devices_diverge_on_case_study_inputs() {
        let nv = Device::new(DeviceKind::NvidiaLike);
        let amd = Device::new(DeviceKind::AmdLike);
        // case study 1 operands
        let (x, y) = (1.5917195493481116e289, 1.5793e-307);
        assert_ne!(
            nv.mathlib().call_f64(MathFunc::Fmod, x, y).to_bits(),
            amd.mathlib().call_f64(MathFunc::Fmod, x, y).to_bits()
        );
        // case study 2 operand
        assert_eq!(nv.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0), 0.0);
        assert_eq!(amd.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0), 1.0);
    }

    #[test]
    fn fp_env_is_ieee_without_fast_math() {
        for kind in DeviceKind::ALL {
            let d = Device::new(kind);
            assert_eq!(d.fp_env(false), FpEnv::ieee());
        }
    }

    #[test]
    fn fp_env_fast_math_is_vendor_asymmetric() {
        let nv = Device::new(DeviceKind::NvidiaLike).fp_env(true);
        let amd = Device::new(DeviceKind::AmdLike).fp_env(true);
        assert_eq!(nv.ftz32, FtzMode::FLUSH);
        assert_eq!(amd.ftz32, FtzMode::FTZ_ONLY);
        assert_ne!(nv.ftz32, amd.ftz32);
        // FP64 never flushes
        assert_eq!(nv.ftz64, FtzMode::IEEE);
        assert_eq!(amd.ftz64, FtzMode::IEEE);
    }

    #[test]
    fn ftz_quirk_off_keeps_ieee_under_fast_math() {
        let mut q = QuirkSet::all();
        q.ftz_fast_math = false;
        let d = Device::with_quirks(DeviceKind::NvidiaLike, q);
        assert_eq!(d.fp_env(true), FpEnv::ieee());
    }
}
