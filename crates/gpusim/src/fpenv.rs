//! The floating-point environment a kernel executes under.

use fpcore::ftz::FtzMode;
use serde::{Deserialize, Serialize};

/// Per-precision flush behaviour for a kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpEnv {
    /// FTZ/DAZ mode applied to FP32 operations.
    pub ftz32: FtzMode,
    /// FTZ/DAZ mode applied to FP64 operations.
    pub ftz64: FtzMode,
}

impl FpEnv {
    /// Fully IEEE-compliant environment (both precisions keep subnormals).
    pub fn ieee() -> Self {
        FpEnv { ftz32: FtzMode::IEEE, ftz64: FtzMode::IEEE }
    }
}

impl Default for FpEnv {
    fn default() -> Self {
        FpEnv::ieee()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ieee() {
        assert_eq!(FpEnv::default(), FpEnv::ieee());
        assert_eq!(FpEnv::ieee().ftz32, FtzMode::IEEE);
    }
}
