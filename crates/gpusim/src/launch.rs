//! Kernel launch configuration.
//!
//! Varity kernels compute a single scalar result, so the paper launches
//! them with a 1×1 grid; the launch configuration is still modelled because
//! the CUDA and HIP *launch syntaxes* differ (`<<<g,b>>>` vs
//! `hipLaunchKernelGGL`) and the HIPIFY translator must rewrite between
//! them.

use serde::{Deserialize, Serialize};

/// Grid/block dimensions for a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchConfig {
    /// The single-thread launch Varity tests use.
    pub fn single_thread() -> Self {
        LaunchConfig { grid_dim: 1, block_dim: 1 }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig::single_thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_launch() {
        let l = LaunchConfig::single_thread();
        assert_eq!(l.total_threads(), 1);
        assert_eq!(l, LaunchConfig::default());
    }

    #[test]
    fn total_threads_multiplies() {
        let l = LaunchConfig { grid_dim: 128, block_dim: 256 };
        assert_eq!(l.total_threads(), 32768);
    }
}
