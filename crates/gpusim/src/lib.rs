//! # gpusim — simulated NVIDIA-like and AMD-like GPU devices
//!
//! This crate is the hardware substitution for the paper's Lassen (NVIDIA
//! V100) and Tioga (AMD MI250X) clusters. A *device* here is the part of a
//! GPU that determines numerical results:
//!
//! * a **vendor math library** ([`mathlib`]) — the analogue of NVIDIA's
//!   `libdevice` and AMD's OCML. The two libraries implement the same C math
//!   functions with *different algorithms*, exactly the situation the
//!   paper's case studies root-cause (`fmod` in Fig. 4, `ceil` in Fig. 5).
//! * **fast-math FP32 intrinsics** — hardware-approximation functions
//!   (`__sinf` / `v_sin_f32` analogues) selected by the simulated compilers
//!   under `-ffast-math` / `-DHIP_FAST_MATH`.
//! * a **floating-point environment** ([`fpenv`]) — FTZ/DAZ behaviour per
//!   precision, which differs between the vendors' fast paths.
//!
//! Basic arithmetic (`+ - * /`, `sqrt`, FMA) is IEEE-754 correctly rounded
//! on both real GPUs, so both simulated devices share Rust's native ops for
//! those; all divergence comes from the mechanisms above, each of which can
//! be disabled individually through [`device::QuirkSet`] for ablation.

#![deny(missing_docs)]

pub mod device;
pub mod fpenv;
pub mod launch;
pub mod mathlib;

pub use device::{Device, DeviceKind, QuirkSet};
pub use fpenv::FpEnv;
pub use mathlib::{MathFunc, MathLib};
