//! The AMD-like math library ("ocml-sim").
//!
//! The accurate FP64 entry points use the host's correctly rounded libm
//! kernels (Rust `std`), standing in for OCML's table-driven
//! implementations — the contrast with the NVIDIA-like from-scratch
//! kernels in [`super::nv`] produces the last-ULP disagreements on a
//! minority of arguments that the paper's §IV-D attributes to "differences
//! in the low-level implementation of mathematical functions".
//!
//! `fmod` is the chunked floating-point algorithm
//! ([`super::shared::fmod_chunked_f64`]), which the paper's case study 1
//! observed as `__ocml_fmod_f64`: it agrees exactly with the NVIDIA-like
//! bit-level `fmod` for `|x/y| < 2^53` and drifts beyond that.
//!
//! `ceil` is IEEE-correct — this library returns `1` for the tiny positive
//! inputs where the NVIDIA-like magic-number path returns `0` (Fig. 5).

use super::nv::via_f64_f32;
use super::shared::{fmod_chunked_f32, fmod_chunked_f64};
use super::{fast, MathFunc, MathLib};
use crate::device::QuirkSet;

/// AMD-like math library with ablation toggles.
#[derive(Debug, Clone, Copy)]
pub struct AmdMathLib {
    /// Divergence-mechanism toggles (all on by default).
    pub quirks: QuirkSet,
}

#[allow(clippy::derivable_impls)] // Default must mean all-quirks-on, not all-false
impl Default for AmdMathLib {
    fn default() -> Self {
        AmdMathLib { quirks: QuirkSet::all() }
    }
}

impl MathLib for AmdMathLib {
    fn name(&self) -> &'static str {
        "ocml-sim"
    }

    fn call_f64(&self, func: MathFunc, a: f64, b: f64) -> f64 {
        match func {
            MathFunc::Sin => a.sin(),
            MathFunc::Cos => a.cos(),
            MathFunc::Tan => a.tan(),
            MathFunc::Asin => a.asin(),
            MathFunc::Acos => a.acos(),
            MathFunc::Atan => a.atan(),
            MathFunc::Sinh => a.sinh(),
            MathFunc::Cosh => a.cosh(),
            MathFunc::Tanh => a.tanh(),
            MathFunc::Exp => a.exp(),
            MathFunc::Exp2 => a.exp2(),
            MathFunc::Log => a.ln(),
            MathFunc::Log2 => a.log2(),
            MathFunc::Log10 => a.log10(),
            MathFunc::Sqrt => a.sqrt(),
            MathFunc::Cbrt => a.cbrt(),
            MathFunc::Fabs => a.abs(),
            MathFunc::Floor => a.floor(),
            MathFunc::Ceil => a.ceil(),
            MathFunc::Trunc => a.trunc(),
            MathFunc::Fmod => {
                if self.quirks.fmod_algorithms {
                    fmod_chunked_f64(a, b)
                } else {
                    a % b
                }
            }
            MathFunc::Pow => a.powf(b),
            MathFunc::Fmin => a.min(b),
            MathFunc::Fmax => a.max(b),
            MathFunc::Atan2 => a.atan2(b),
            MathFunc::Hypot => a.hypot(b),
            MathFunc::Expm1 => a.exp_m1(),
            MathFunc::Log1p => a.ln_1p(),
            MathFunc::Asinh => a.asinh(),
            MathFunc::Acosh => a.acosh(),
            MathFunc::Atanh => a.atanh(),
            MathFunc::Round => a.round(),
            MathFunc::Rint => a.round_ties_even(),
            MathFunc::Rsqrt => super::special::rsqrt_amd(a),
            MathFunc::Erf => super::special::erf_amd(a),
            MathFunc::Tgamma => super::special::tgamma_amd(a),
        }
    }

    fn call_f32(&self, func: MathFunc, a: f32, b: f32) -> f32 {
        match func {
            MathFunc::Fmod => {
                if self.quirks.fmod_algorithms {
                    fmod_chunked_f32(a, b)
                } else {
                    a % b
                }
            }
            _ => via_f64_f32(func, a, b),
        }
    }

    fn call_fast_f32(&self, func: MathFunc, a: f32, b: f32) -> f32 {
        // HIP's -DHIP_FAST_MATH substitutes the hardware transcendental
        // instructions (V_SIN_F32 etc.) but keeps pow and the hyperbolics
        // on the accurate path — a weaker set than nvcc's (paper §III-D).
        if self.quirks.fast_intrinsics && amd_has_fast_variant(func) {
            fast::amd_fast_f32(func, a, b)
        } else {
            self.call_f32(func, a, b)
        }
    }
}

/// Which functions the AMD-like fast path actually substitutes.
pub fn amd_has_fast_variant(func: MathFunc) -> bool {
    matches!(
        func,
        MathFunc::Sin
            | MathFunc::Cos
            | MathFunc::Tan
            | MathFunc::Exp
            | MathFunc::Exp2
            | MathFunc::Log
            | MathFunc::Log2
            | MathFunc::Log10
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_f64_matches_std() {
        let lib = AmdMathLib::default();
        assert_eq!(lib.call_f64(MathFunc::Exp, 1.5, 0.0), 1.5f64.exp());
        assert_eq!(lib.call_f64(MathFunc::Log, 7.0, 0.0), 7.0f64.ln());
        assert_eq!(lib.call_f64(MathFunc::Ceil, 1.5955e-125, 0.0), 1.0);
        assert_eq!(lib.call_f64(MathFunc::Pow, -2.0, 3.0), -8.0);
    }

    #[test]
    fn fmod_uses_chunked_algorithm() {
        let lib = AmdMathLib::default();
        // mundane ratio: agrees with exact fmod
        assert_eq!(lib.call_f64(MathFunc::Fmod, 5.5, 2.0), 5.5 % 2.0);
        // extreme ratio: differs from exact fmod (case study 1)
        let x = 1.5917195493481116e289;
        let y = 1.5793e-307;
        assert_ne!(lib.call_f64(MathFunc::Fmod, x, y).to_bits(), (x % y).to_bits());
    }

    #[test]
    fn fmod_quirk_off_restores_exactness() {
        let lib = AmdMathLib { quirks: QuirkSet::none() };
        let x = 1.5917195493481116e289;
        let y = 1.5793e-307;
        assert_eq!(lib.call_f64(MathFunc::Fmod, x, y).to_bits(), (x % y).to_bits());
    }

    #[test]
    fn f32_accurate_path_matches_nv_accurate_path() {
        // at O0 the FP32 transcendentals agree across vendors
        let amd = AmdMathLib::default();
        let nv = super::super::nv::NvMathLib::default();
        for &x in &[0.5f32, 1.37, -2.2, 100.0] {
            for f in [MathFunc::Sin, MathFunc::Exp, MathFunc::Log2, MathFunc::Tanh] {
                let a = amd.call_f32(f, x, 0.0);
                let n = nv.call_f32(f, x, 0.0);
                assert!(
                    a.to_bits() == n.to_bits() || (a.is_nan() && n.is_nan()),
                    "{f}({x}): amd={a} nv={n}"
                );
            }
        }
    }

    #[test]
    fn fast_variant_set_is_weaker_than_nvidia() {
        // pow/hyperbolics stay accurate under HIP_FAST_MATH
        assert!(!amd_has_fast_variant(MathFunc::Pow));
        assert!(!amd_has_fast_variant(MathFunc::Cosh));
        assert!(amd_has_fast_variant(MathFunc::Sin));
        assert!(amd_has_fast_variant(MathFunc::Exp));
    }

    #[test]
    fn fast_pow_keeps_special_cases_on_amd() {
        let lib = AmdMathLib::default();
        // under fast math, pow(-2, 2) stays 4 on AMD...
        assert_eq!(lib.call_fast_f32(MathFunc::Pow, -2.0, 2.0), 4.0);
        // ...but goes NaN on NVIDIA (asymmetry behind NaN-Num discrepancies)
        let nv = super::super::nv::NvMathLib::default();
        assert!(nv.call_fast_f32(MathFunc::Pow, -2.0, 2.0).is_nan());
    }
}
