//! Hardware-approximation FP32 intrinsics selected under fast math.
//!
//! * The NVIDIA-like set models `__sinf`, `__expf`, `__logf`, `__powf`, …:
//!   SFU-style polynomial kernels evaluated in FP32 with quadrant reduction,
//!   no subnormal support, and garbage (finite) results for huge trig
//!   arguments.
//! * The AMD-like set models the `V_SIN_F32` / `V_EXP_F32` ISA semantics
//!   behind `-DHIP_FAST_MATH`: the argument is pre-scaled by `1/2π` and
//!   reduced with a *fract* in FP32, so for `|x| ≥ 2^24` the scaled argument
//!   has no fractional bits left and the hardware sine returns **0** where
//!   the NVIDIA-like intrinsic returns a garbage finite value — one of the
//!   engines behind the `Num vs Zero` explosion in the paper's Table IX.
//!
//! Both vendors differ by several ULP on ordinary arguments, which is what
//! makes `O3 -ffast-math` the dominant discrepancy source for FP32.

use super::shared::ldexp_f32;
use super::MathFunc;

const LOG2E_F32: f32 = std::f32::consts::LOG2_E;
const LN2_F32: f32 = std::f32::consts::LN_2;
const FRAC_2_PI_F32: f32 = std::f32::consts::FRAC_2_PI;
const PI_2_HI: f32 = 1.570_796_4;
const PI_2_LO: f32 = -4.371_139_e-8;

/// Dispatch an NVIDIA-like fast intrinsic.
pub fn nv_fast_f32(func: MathFunc, a: f32, b: f32) -> f32 {
    match func {
        MathFunc::Sin => nv_fast_sincos(a, true),
        MathFunc::Cos => nv_fast_sincos(a, false),
        MathFunc::Tan => nv_fast_sincos(a, true) / nv_fast_sincos(a, false),
        MathFunc::Exp => nv_fast_exp2(a * LOG2E_F32),
        MathFunc::Exp2 => nv_fast_exp2(a),
        MathFunc::Log => nv_fast_log2(a) * LN2_F32,
        MathFunc::Log2 => nv_fast_log2(a),
        MathFunc::Log10 => nv_fast_log2(a) * std::f32::consts::LOG10_2,
        MathFunc::Pow => nv_fast_exp2(b * nv_fast_log2(a)),
        MathFunc::Sinh => {
            let t = nv_fast_exp2(a * LOG2E_F32);
            0.5 * t - 0.5 / t
        }
        MathFunc::Cosh => {
            let t = nv_fast_exp2(a * LOG2E_F32);
            0.5 * t + 0.5 / t
        }
        MathFunc::Tanh => {
            let t = nv_fast_exp2(2.0 * a * LOG2E_F32);
            (t - 1.0) / (t + 1.0)
        }
        _ => unreachable!("no NVIDIA fast variant for {func}"),
    }
}

/// Dispatch an AMD-like fast intrinsic (`V_*_F32` semantics).
pub fn amd_fast_f32(func: MathFunc, a: f32, _b: f32) -> f32 {
    match func {
        MathFunc::Sin => amd_fast_sincos(a, true),
        MathFunc::Cos => amd_fast_sincos(a, false),
        MathFunc::Tan => amd_fast_sincos(a, true) / amd_fast_sincos(a, false),
        MathFunc::Exp => amd_fast_exp2(a * LOG2E_F32),
        MathFunc::Exp2 => amd_fast_exp2(a),
        MathFunc::Log => amd_fast_log2(a) * LN2_F32,
        MathFunc::Log2 => amd_fast_log2(a),
        MathFunc::Log10 => amd_fast_log2(a) * std::f32::consts::LOG10_2,
        _ => unreachable!("no AMD fast variant for {func}"),
    }
}

/// `__sinf`/`__cosf`: FP32 quadrant reduction + degree-5 polynomial. For
/// huge arguments the reduction degrades gracefully into deterministic
/// garbage (finite, roughly in [-1,1]) — the documented `__sinf` behaviour.
fn nv_fast_sincos(x: f32, want_sin: bool) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    let (r, quadrant) = if x.abs() >= 16_777_216.0 {
        // beyond 2^24 the FP32 reduction has no valid bits: fall back to a
        // crude fmod that yields deterministic garbage
        (x % std::f32::consts::TAU, 0u32)
    } else {
        let q = (x * FRAC_2_PI_F32).round();
        let r = (-q).mul_add(PI_2_HI, x);
        let r = (-q).mul_add(PI_2_LO, r);
        (r, (q as i32 & 3) as u32)
    };
    // select sin/cos kernel by quadrant
    let use_sin_kernel = if want_sin { quadrant % 2 == 0 } else { quadrant % 2 == 1 };
    let negate =
        if want_sin { quadrant == 2 || quadrant == 3 } else { quadrant == 1 || quadrant == 2 };
    let z = r * r;
    let v = if use_sin_kernel {
        // sin r ~ r(1 - z/6 + z^2/120 - z^3/5040)
        let p = (-1.951_529_6e-4f32)
            .mul_add(z, 8.332_161e-3)
            .mul_add(z, -1.666_665_5e-1)
            .mul_add(z, 1.0);
        r * p
    } else {
        // cos r ~ 1 - z/2 + z^2/24 - z^3/720
        (-1.358_891_6e-3f32).mul_add(z, 4.166_389e-2).mul_add(z, -5.000_000e-1).mul_add(z, 1.0)
    };
    if negate {
        -v
    } else {
        v
    }
}

/// `__exp2f`: FP32 split + degree-4 polynomial, flush-to-zero underflow
/// (no subnormal results), saturating overflow.
fn nv_fast_exp2(t: f32) -> f32 {
    if t.is_nan() {
        return t;
    }
    if t > 128.0 {
        return f32::INFINITY;
    }
    if t < -126.0 {
        return 0.0; // FTZ: the fast intrinsic never produces subnormals
    }
    let k = t.round();
    let r = t - k;
    // 2^r = e^(r ln2): degree-5 Taylor in FP32
    let w = r * LN2_F32;
    let p = 8.333_334e-3f32
        .mul_add(w, 4.166_666_8e-2)
        .mul_add(w, 1.666_666_7e-1)
        .mul_add(w, 5.0e-1)
        .mul_add(w, 1.0)
        .mul_add(w, 1.0);
    ldexp_f32(p, k as i32)
}

/// `__log2f`: FP32 kernel. Subnormal inputs are flushed to zero first
/// (DAZ), so they yield −Inf — where the AMD-like fast log normalizes and
/// returns a finite value (an `Inf vs Num` discrepancy source).
fn nv_fast_log2(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x.is_subnormal() || x == 0.0 {
        return f32::NEG_INFINITY; // DAZ: subnormal treated as zero
    }
    if x < 0.0 {
        return f32::NAN;
    }
    if x.is_infinite() {
        return x;
    }
    let bits = x.to_bits();
    let mut e = ((bits >> 23) & 0xff) as i32 - 127;
    let mut m = f32::from_bits((bits & 0x007f_ffff) | (127u32 << 23));
    if m > std::f32::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // ln m = 2s(1 + z/3 + z^2/5 + z^3/7)
    let p = 0.142_857_15f32.mul_add(z, 0.2).mul_add(z, 0.333_333_34).mul_add(z, 1.0);
    let lnm = 2.0 * s * p;
    e as f32 + lnm * LOG2E_F32
}

/// `V_SIN_F32`/`V_COS_F32` semantics: scale by `1/2π`, take the FP32
/// fractional part, evaluate the hardware sine on the fraction. For
/// `|x| ≥ 2^24` the fract is exactly 0 ⇒ sin → 0, cos → 1.
fn amd_fast_sincos(x: f32, want_sin: bool) -> f32 {
    if x.is_nan() || x.is_infinite() {
        return f32::NAN;
    }
    let scaled = x * (1.0 / std::f32::consts::TAU);
    let f = scaled - scaled.floor(); // FP32 fract: loses everything for big x
    let angle = (f as f64) * std::f64::consts::TAU;
    let v = if want_sin { angle.sin() } else { angle.cos() };
    v as f32
}

/// `V_EXP_F32` semantics: FP32 pre-scale, accurate hardware exp2 core,
/// flush-to-zero on subnormal results.
fn amd_fast_exp2(t: f32) -> f32 {
    if t.is_nan() {
        return t;
    }
    let r = (t as f64).exp2() as f32;
    if r.is_subnormal() {
        0.0
    } else {
        r
    }
}

/// `V_LOG_F32` semantics: hardware log2 core; subnormal inputs are
/// normalized (unlike the NVIDIA-like DAZ path).
fn amd_fast_log2(x: f32) -> f32 {
    if x == 0.0 {
        return f32::NEG_INFINITY;
    }
    if x < 0.0 {
        return f32::NAN;
    }
    (x as f64).log2() as f32
}

/// Approximate reciprocal (`__frcp`-style, used when the NVIDIA-like
/// compiler rewrites `a/b` into `a * rcp(b)` under fast math): ~22-bit
/// accuracy, subnormal/zero inputs produce a signed infinity (FTZ).
pub fn nv_rcp_f32(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x == 0.0 || x.is_subnormal() {
        return if x.is_sign_negative() { f32::NEG_INFINITY } else { f32::INFINITY };
    }
    if x.is_infinite() {
        return if x < 0.0 { -0.0 } else { 0.0 };
    }
    let r = (1.0 / (x as f64)) as f32;
    // drop the last mantissa bit: the SFU approximation is not correctly
    // rounded
    f32::from_bits(r.to_bits() & !1)
}

#[cfg(test)]
#[allow(clippy::approx_constant)] // 3.14159 is a test argument, not a PI stand-in
mod tests {
    use super::*;

    #[test]
    fn nv_fast_sin_moderate_args_are_close() {
        for &x in &[0.0f32, 0.5, 1.0, -2.2, 3.14159, 10.0, 100.0] {
            let got = nv_fast_f32(MathFunc::Sin, x, 0.0);
            let want = (x as f64).sin() as f32;
            assert!(
                (got - want).abs() < 2e-5 + want.abs() * 1e-4,
                "__sinf({x}) = {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn nv_fast_cos_moderate_args_are_close() {
        for &x in &[0.0f32, 0.5, -1.0, 2.0, 6.0, 50.0] {
            let got = nv_fast_f32(MathFunc::Cos, x, 0.0);
            let want = (x as f64).cos() as f32;
            assert!(
                (got - want).abs() < 2e-5 + want.abs() * 1e-4,
                "__cosf({x}) = {got}, want ~{want}"
            );
        }
    }

    #[test]
    fn fast_sin_of_infinity_is_nan_on_both() {
        assert!(nv_fast_f32(MathFunc::Sin, f32::INFINITY, 0.0).is_nan());
        assert!(amd_fast_f32(MathFunc::Sin, f32::INFINITY, 0.0).is_nan());
    }

    #[test]
    fn huge_arg_divergence_nv_garbage_vs_amd_zero() {
        // the Num-vs-Zero mechanism: NV garbage finite, AMD exactly 0
        let x = 1.0e30f32;
        let nv = nv_fast_f32(MathFunc::Sin, x, 0.0);
        let amd = amd_fast_f32(MathFunc::Sin, x, 0.0);
        assert!(nv.is_finite());
        assert_eq!(amd, 0.0, "V_SIN of huge arg returns 0");
        assert_ne!(nv.to_bits(), amd.to_bits());
        assert_eq!(amd_fast_f32(MathFunc::Cos, x, 0.0), 1.0);
    }

    #[test]
    fn vendors_differ_by_ulps_on_ordinary_args() {
        let mut diffs = 0;
        let mut x = 0.1f32;
        for _ in 0..100 {
            let nv = nv_fast_f32(MathFunc::Exp, x, 0.0);
            let amd = amd_fast_f32(MathFunc::Exp, x, 0.0);
            if nv.to_bits() != amd.to_bits() {
                diffs += 1;
            }
            // but never far apart on moderate args
            assert!((nv - amd).abs() <= nv.abs() * 1e-5, "exp({x}): {nv} vs {amd}");
            x += 0.37;
        }
        assert!(diffs > 10, "expected frequent ULP-level disagreement, got {diffs}");
    }

    #[test]
    fn nv_fast_exp_flushes_underflow_to_zero() {
        // exp(-100) is a normal f32 (~3.7e-44 is subnormal; e^-100≈3.72e-44)
        let r = nv_fast_f32(MathFunc::Exp, -100.0, 0.0);
        assert_eq!(r, 0.0, "fast exp must not produce subnormals, got {r:e}");
        let accurate = ((-100.0f64).exp()) as f32;
        assert!(accurate.is_subnormal()); // sanity: the accurate result is subnormal
    }

    #[test]
    fn nv_fast_exp_overflow() {
        assert_eq!(nv_fast_f32(MathFunc::Exp, 100.0, 0.0), f32::INFINITY);
        assert!(nv_fast_f32(MathFunc::Exp, 88.0, 0.0).is_finite());
    }

    #[test]
    fn log_subnormal_asymmetry() {
        // NV fast log flushes subnormal input -> -Inf; AMD normalizes -> finite
        let x = 1.0e-41f32;
        assert!(x.is_subnormal());
        let nv = nv_fast_f32(MathFunc::Log, x, 0.0);
        let amd = amd_fast_f32(MathFunc::Log, x, 0.0);
        assert_eq!(nv, f32::NEG_INFINITY);
        assert!(amd.is_finite());
        assert!((amd - (x as f64).ln() as f32).abs() < 1e-3);
    }

    #[test]
    fn fast_log_negative_is_nan() {
        assert!(nv_fast_f32(MathFunc::Log, -1.0, 0.0).is_nan());
        assert!(amd_fast_f32(MathFunc::Log, -1.0, 0.0).is_nan());
    }

    #[test]
    fn nv_fast_pow_negative_base_is_nan() {
        assert!(nv_fast_f32(MathFunc::Pow, -2.0, 2.0).is_nan());
    }

    #[test]
    fn nv_fast_log2_accuracy() {
        for &x in &[0.5f32, 1.0, 2.0, 7.3, 1e10, 1e-10] {
            let got = nv_fast_log2(x);
            let want = (x as f64).log2() as f32;
            assert!((got - want).abs() < 1e-4 + want.abs() * 1e-5, "log2({x}): {got} vs {want}");
        }
    }

    #[test]
    fn rcp_semantics() {
        assert_eq!(nv_rcp_f32(0.0), f32::INFINITY);
        assert_eq!(nv_rcp_f32(-0.0), f32::NEG_INFINITY);
        assert_eq!(nv_rcp_f32(1e-41), f32::INFINITY); // subnormal flushed
        assert_eq!(nv_rcp_f32(f32::INFINITY), 0.0);
        assert!(nv_rcp_f32(f32::NAN).is_nan());
        let r = nv_rcp_f32(3.0);
        assert!((r - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn fast_exp2_exact_integers() {
        for e in [-10i32, 0, 1, 10, 100] {
            assert_eq!(nv_fast_exp2(e as f32), 2f32.powi(e), "2^{e}");
        }
    }

    #[test]
    fn hyperbolic_fast_path_nv_only() {
        let nv = nv_fast_f32(MathFunc::Cosh, 1.0, 0.0);
        let want = 1f64.cosh() as f32;
        assert!((nv - want).abs() < 1e-4);
    }

    #[test]
    fn ldexp_f32_saturates() {
        assert_eq!(ldexp_f32(1.0, 1000), f32::INFINITY);
        assert_eq!(ldexp_f32(1.0, -1000), 0.0);
        assert_eq!(ldexp_f32(1.5, 4), 24.0);
    }
}
