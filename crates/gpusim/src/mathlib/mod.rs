//! Vendor math libraries.
//!
//! [`MathFunc`] enumerates the C math library surface that the Varity-style
//! generator may emit (paper Table III allows "functions from the C math
//! library"). [`MathLib`] is the dispatch interface a device exposes; the
//! NVIDIA-like implementation lives in [`nv`], the AMD-like one in [`amd`],
//! and the hardware-approximation FP32 intrinsics used under fast math live
//! in [`fast`]. [`shared`] holds the numerically careful kernels both
//! vendors happen to agree on (correct argument reduction, exact `fmod`
//! core) so that divergence is confined to the documented mechanisms.

// polynomial coefficients are written at full precision on purpose — the
// trailing digits document the exact rational value being approximated
#[allow(clippy::excessive_precision)]
pub mod amd;
#[allow(clippy::excessive_precision)]
pub mod fast;
#[allow(clippy::excessive_precision)]
pub mod nv;
pub mod shared;
#[allow(clippy::excessive_precision)]
pub mod special;

use serde::{Deserialize, Serialize};

/// A function from the C math library callable from generated kernels.
///
/// The FP32 variants (`cosf`, `sqrtf`, …) are the same enum member; the
/// precision is chosen by which `MathLib::call_*` entry point is used,
/// mirroring how `cos` vs `cosf` select different library entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the names are the C math library names
pub enum MathFunc {
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Sinh,
    Cosh,
    Tanh,
    Exp,
    Exp2,
    Log,
    Log2,
    Log10,
    Sqrt,
    Cbrt,
    Fabs,
    Floor,
    Ceil,
    Trunc,
    Fmod,
    Pow,
    Fmin,
    Fmax,
    Atan2,
    Hypot,
    Expm1,
    Log1p,
    Asinh,
    Acosh,
    Atanh,
    Round,
    Rint,
    Rsqrt,
    Erf,
    Tgamma,
}

impl MathFunc {
    /// Every function, in a stable order (used by benches and stats).
    pub const ALL: [MathFunc; 36] = [
        MathFunc::Sin,
        MathFunc::Cos,
        MathFunc::Tan,
        MathFunc::Asin,
        MathFunc::Acos,
        MathFunc::Atan,
        MathFunc::Sinh,
        MathFunc::Cosh,
        MathFunc::Tanh,
        MathFunc::Exp,
        MathFunc::Exp2,
        MathFunc::Log,
        MathFunc::Log2,
        MathFunc::Log10,
        MathFunc::Sqrt,
        MathFunc::Cbrt,
        MathFunc::Fabs,
        MathFunc::Floor,
        MathFunc::Ceil,
        MathFunc::Trunc,
        MathFunc::Fmod,
        MathFunc::Pow,
        MathFunc::Fmin,
        MathFunc::Fmax,
        MathFunc::Atan2,
        MathFunc::Hypot,
        MathFunc::Expm1,
        MathFunc::Log1p,
        MathFunc::Asinh,
        MathFunc::Acosh,
        MathFunc::Atanh,
        MathFunc::Round,
        MathFunc::Rint,
        MathFunc::Rsqrt,
        MathFunc::Erf,
        MathFunc::Tgamma,
    ];

    /// Number of distinct math functions (`ALL.len()` as a const usable
    /// in array types, e.g. per-function tally arrays in the interpreter).
    pub const COUNT: usize = MathFunc::ALL.len();

    /// Dense index of this function within [`MathFunc::ALL`] order.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Number of floating-point arguments (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            MathFunc::Fmod
            | MathFunc::Pow
            | MathFunc::Fmin
            | MathFunc::Fmax
            | MathFunc::Atan2
            | MathFunc::Hypot => 2,
            _ => 1,
        }
    }

    /// C source name of the FP64 entry point.
    pub fn c_name(self) -> &'static str {
        match self {
            MathFunc::Sin => "sin",
            MathFunc::Cos => "cos",
            MathFunc::Tan => "tan",
            MathFunc::Asin => "asin",
            MathFunc::Acos => "acos",
            MathFunc::Atan => "atan",
            MathFunc::Sinh => "sinh",
            MathFunc::Cosh => "cosh",
            MathFunc::Tanh => "tanh",
            MathFunc::Exp => "exp",
            MathFunc::Exp2 => "exp2",
            MathFunc::Log => "log",
            MathFunc::Log2 => "log2",
            MathFunc::Log10 => "log10",
            MathFunc::Sqrt => "sqrt",
            MathFunc::Cbrt => "cbrt",
            MathFunc::Fabs => "fabs",
            MathFunc::Floor => "floor",
            MathFunc::Ceil => "ceil",
            MathFunc::Trunc => "trunc",
            MathFunc::Fmod => "fmod",
            MathFunc::Pow => "pow",
            MathFunc::Fmin => "fmin",
            MathFunc::Fmax => "fmax",
            MathFunc::Atan2 => "atan2",
            MathFunc::Hypot => "hypot",
            MathFunc::Expm1 => "expm1",
            MathFunc::Log1p => "log1p",
            MathFunc::Asinh => "asinh",
            MathFunc::Acosh => "acosh",
            MathFunc::Atanh => "atanh",
            MathFunc::Round => "round",
            MathFunc::Rint => "rint",
            MathFunc::Rsqrt => "rsqrt",
            MathFunc::Erf => "erf",
            MathFunc::Tgamma => "tgamma",
        }
    }

    /// C source name of the FP32 entry point (`cosf`, `sqrtf`, …).
    pub fn c_name_f32(self) -> String {
        format!("{}f", self.c_name())
    }

    /// Parse a C math function name, accepting both the FP64 name and the
    /// `f`-suffixed FP32 name.
    pub fn from_c_name(name: &str) -> Option<MathFunc> {
        let base = name.strip_suffix('f').filter(|b| {
            // "fabsf" -> "fabs", but plain "fabs" must not become "fab"
            MathFunc::ALL.iter().any(|m| m.c_name() == *b)
        });
        let name = base.unwrap_or(name);
        MathFunc::ALL.into_iter().find(|m| m.c_name() == name)
    }

    /// True if the fast-math compilers replace this call with a
    /// hardware-approximation FP32 intrinsic (`__sinf` etc.).
    pub fn has_fast_f32_variant(self) -> bool {
        matches!(
            self,
            MathFunc::Sin
                | MathFunc::Cos
                | MathFunc::Tan
                | MathFunc::Exp
                | MathFunc::Exp2
                | MathFunc::Log
                | MathFunc::Log2
                | MathFunc::Log10
                | MathFunc::Pow
                | MathFunc::Sinh
                | MathFunc::Cosh
                | MathFunc::Tanh
        )
    }
}

impl std::fmt::Display for MathFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.c_name())
    }
}

/// A device math library: the set of entry points generated kernels link
/// against. `a` is the first argument; `b` is ignored for unary functions.
pub trait MathLib: Send + Sync {
    /// Short vendor name for reports ("libdevice-sim" / "ocml-sim").
    fn name(&self) -> &'static str;

    /// Accurate FP64 entry point (`sin`, `fmod`, …).
    fn call_f64(&self, func: MathFunc, a: f64, b: f64) -> f64;

    /// Accurate FP32 entry point (`sinf`, `fmodf`, …).
    fn call_f32(&self, func: MathFunc, a: f32, b: f32) -> f32;

    /// FP64 under fast math. Neither vendor ships approximate FP64
    /// hardware intrinsics, so this defaults to the accurate path; vendors
    /// may override specific functions (e.g. `pow` via `exp2(y*log2 x)`).
    fn call_fast_f64(&self, func: MathFunc, a: f64, b: f64) -> f64 {
        self.call_f64(func, a, b)
    }

    /// FP32 under fast math: hardware-approximation intrinsics
    /// (`__sinf`-style) where they exist, accurate path otherwise.
    fn call_fast_f32(&self, func: MathFunc, a: f32, b: f32) -> f32;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_is_one_or_two() {
        for f in MathFunc::ALL {
            assert!(matches!(f.arity(), 1 | 2), "{f}");
        }
        assert_eq!(MathFunc::Fmod.arity(), 2);
        assert_eq!(MathFunc::Cos.arity(), 1);
    }

    #[test]
    fn c_name_roundtrip() {
        for f in MathFunc::ALL {
            assert_eq!(MathFunc::from_c_name(f.c_name()), Some(f), "{f}");
            assert_eq!(MathFunc::from_c_name(&f.c_name_f32()), Some(f), "{f}f");
        }
    }

    #[test]
    fn fabs_suffix_is_not_misparsed() {
        // "fabs" ends in no suffix; "fabsf" strips to "fabs"
        assert_eq!(MathFunc::from_c_name("fabs"), Some(MathFunc::Fabs));
        assert_eq!(MathFunc::from_c_name("fabsf"), Some(MathFunc::Fabs));
        assert_eq!(MathFunc::from_c_name("fab"), None);
    }

    #[test]
    fn unknown_names_rejected() {
        assert_eq!(MathFunc::from_c_name("sinh2"), None);
        assert_eq!(MathFunc::from_c_name(""), None);
        assert_eq!(MathFunc::from_c_name("printf"), None);
    }

    #[test]
    fn index_is_dense_and_matches_all_order() {
        for (i, f) in MathFunc::ALL.iter().enumerate() {
            assert_eq!(f.index(), i, "{f:?} out of order");
        }
        assert_eq!(MathFunc::COUNT, MathFunc::ALL.len());
    }

    #[test]
    fn fast_variant_set_matches_vendor_docs() {
        assert!(MathFunc::Sin.has_fast_f32_variant());
        assert!(MathFunc::Pow.has_fast_f32_variant());
        assert!(!MathFunc::Sqrt.has_fast_f32_variant()); // sqrt is a HW op
        assert!(!MathFunc::Fabs.has_fast_f32_variant());
        assert!(!MathFunc::Fmod.has_fast_f32_variant());
    }
}
