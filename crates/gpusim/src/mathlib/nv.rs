//! The NVIDIA-like math library ("libdevice-sim").
//!
//! FP64 `exp`, `log` (and the functions derived from them: `exp2`, `log2`,
//! `log10`, `pow`, `cosh`, `sinh`) are implemented from scratch with the
//! classic Cody–Waite reduction + polynomial kernels that `libdevice` uses.
//! They are accurate to ~1–2 ULP, which means they *agree with the AMD-like
//! library (which uses different kernels) on most arguments and differ in
//! the last ULP on a minority* — the "math library implementation
//! difference" mechanism of the paper's §IV-D.
//!
//! `fmod` uses the exact bit-level long-division algorithm (the paper's
//! case study 1 found NVIDIA implements `fmod` via "floating-point
//! arithmetic and bitwise manipulation" in SASS/PTX).
//!
//! `ceil` reproduces the paper's case study 2: the NVIDIA-like kernel goes
//! through a magic-number path that loses positive values below `2^-64`
//! (FP64) / `2^-32` (FP32) and returns `0` where IEEE (and the AMD-like
//! library) return `1`.

use super::shared::{fmod_exact_f32, fmod_exact_f64, horner_fma, ldexp_f64};
use super::{fast, MathFunc, MathLib};
use crate::device::QuirkSet;

/// ln(2) split for Cody–Waite reduction.
const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
/// Low part of ln(2).
const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
/// 1/ln(2).
const INV_LN2: f64 = std::f64::consts::LOG2_E;
/// 1/ln(10) for log10 derivation.
const INV_LN10: f64 = std::f64::consts::LOG10_E;

/// NVIDIA-like math library. Holds the quirk toggles so individual
/// divergence mechanisms can be switched off for ablation studies.
#[derive(Debug, Clone, Copy)]
pub struct NvMathLib {
    /// Divergence-mechanism toggles (all on by default).
    pub quirks: QuirkSet,
}

#[allow(clippy::derivable_impls)] // Default must mean all-quirks-on, not all-false
impl Default for NvMathLib {
    fn default() -> Self {
        NvMathLib { quirks: QuirkSet::all() }
    }
}

/// exp(x) via Cody–Waite reduction and a degree-12 Taylor kernel.
/// Accuracy ~1 ULP.
pub fn nv_exp(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > 709.782712893384 {
        return f64::INFINITY;
    }
    if x < -745.2 {
        return 0.0;
    }
    let k = (x * INV_LN2).round();
    let r = (-k).mul_add(LN2_HI, x);
    let r = (-k).mul_add(LN2_LO, r);
    // Taylor coefficients 1/12! .. 1/0!, highest power first.
    const C: [f64; 13] = [
        2.087_675_698_786_810e-9,   // 1/12!
        2.505_210_838_544_172e-8,   // 1/11!
        2.755_731_922_398_589e-7,   // 1/10!
        2.755_731_922_398_589e-6,   // 1/9!
        2.480_158_730_158_730e-5,   // 1/8!
        1.984_126_984_126_984e-4,   // 1/7!
        1.388_888_888_888_889e-3,   // 1/6!
        8.333_333_333_333_333e-3,   // 1/5!
        4.166_666_666_666_666e-2,   // 1/4!
        1.666_666_666_666_666_6e-1, // 1/3!
        5.0e-1,                     // 1/2!
        1.0,
        1.0,
    ];
    let p = horner_fma(r, &C);
    ldexp_f64(p, k as i32)
}

/// ln(x) via `s = (m-1)/(m+1)` atanh-series kernel. Accuracy ~1 ULP.
pub fn nv_log(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x.is_infinite() {
        return x;
    }
    // normalize subnormals
    let (x, pre) =
        if x.is_subnormal() { (x * fpcore::bits::exp2i_f64(54), -54i32) } else { (x, 0) };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i32 - 1023;
    let mut m = f64::from_bits((bits & fpcore::bits::F64_MANT_MASK) | (1023u64 << 52));
    // keep m in [sqrt(1/2), sqrt(2))
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let e = e + pre;
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // atanh series: ln m = 2s(1 + z/3 + z^2/5 + ... + z^10/21)
    const C: [f64; 11] = [
        1.0 / 21.0,
        1.0 / 19.0,
        1.0 / 17.0,
        1.0 / 15.0,
        1.0 / 13.0,
        1.0 / 11.0,
        1.0 / 9.0,
        1.0 / 7.0,
        1.0 / 5.0,
        1.0 / 3.0,
        1.0,
    ];
    let poly = horner_fma(z, &C);
    let ef = e as f64;
    // ln x = e*ln2 + 2s*poly, with the split ln2 for accuracy
    (2.0 * s).mul_add(poly, ef.mul_add(LN2_LO, ef * LN2_HI))
}

/// 2^x derived from the exp kernel with an exact integer split.
pub fn nv_exp2(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > 1024.0 {
        return f64::INFINITY;
    }
    if x < -1075.0 {
        return 0.0;
    }
    let k = x.round();
    let r = x - k; // exact: |r| <= 0.5
    let p = nv_exp_kernel(r * std::f64::consts::LN_2);
    ldexp_f64(p, k as i32)
}

/// The polynomial core of [`nv_exp`] without range checks, for |x| ≤ 0.5·ln2.
fn nv_exp_kernel(r: f64) -> f64 {
    const C: [f64; 13] = [
        2.087_675_698_786_810e-9,
        2.505_210_838_544_172e-8,
        2.755_731_922_398_589e-7,
        2.755_731_922_398_589e-6,
        2.480_158_730_158_730e-5,
        1.984_126_984_126_984e-4,
        1.388_888_888_888_889e-3,
        8.333_333_333_333_333e-3,
        4.166_666_666_666_666e-2,
        1.666_666_666_666_666_6e-1,
        5.0e-1,
        1.0,
        1.0,
    ];
    horner_fma(r, &C)
}

/// log2 derived from the log kernel (one extra rounding vs a native log2).
pub fn nv_log2(x: f64) -> f64 {
    nv_log(x) * INV_LN2
}

/// log10 derived from the log kernel.
pub fn nv_log10(x: f64) -> f64 {
    nv_log(x) * INV_LN10
}

/// pow with the IEEE special-case table, then `exp(y·ln|x|)` with sign
/// fix-up for integer exponents of negative bases.
pub fn nv_pow(x: f64, y: f64) -> f64 {
    // IEEE 754 / C99 special cases
    if y == 0.0 {
        return 1.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    if x.is_nan() || y.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return if y < 0.0 {
            if is_odd_integer(y) && x.is_sign_negative() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        } else if is_odd_integer(y) {
            x // signed zero preserved
        } else {
            0.0
        };
    }
    if x.is_infinite() {
        let mag = if y > 0.0 { f64::INFINITY } else { 0.0 };
        return if x.is_sign_negative() && is_odd_integer(y) { -mag } else { mag };
    }
    if y.is_infinite() {
        let ax = x.abs();
        return if ax == 1.0 {
            1.0
        } else if (ax > 1.0) == (y > 0.0) {
            f64::INFINITY
        } else {
            0.0
        };
    }
    let mut sign = 1.0;
    let ax = if x < 0.0 {
        if y.fract() != 0.0 && y.abs() < 9.007_199_254_740_992e15 {
            return f64::NAN; // negative base, non-integer exponent
        }
        if is_odd_integer(y) {
            sign = -1.0;
        }
        -x
    } else {
        x
    };
    sign * nv_exp(y * nv_log(ax))
}

/// Under fast math the special-case table is skipped entirely (the paper's
/// `-ffast-math` assumes no NaN/Inf), so negative bases produce NaN.
pub fn nv_pow_fast(x: f64, y: f64) -> f64 {
    nv_exp(y * nv_log(x))
}

fn is_odd_integer(y: f64) -> bool {
    // every float >= 2^53 is an even integer
    y.fract() == 0.0 && y.abs() < 9.007_199_254_740_992e15 && (y as i64) % 2 != 0
}

/// cosh via the exp kernel: `(t + 1/t)/2` with overflow handling.
pub fn nv_cosh(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    let ax = x.abs();
    if ax > 710.5 {
        return f64::INFINITY;
    }
    let t = nv_exp(ax);
    if t.is_infinite() {
        // exp overflowed but cosh may still fit: cosh = exp(ax - ln2)
        return nv_exp(ax - std::f64::consts::LN_2);
    }
    0.5 * t + 0.5 / t
}

/// sinh via the exp kernel, with a Taylor kernel near zero to avoid
/// cancellation.
pub fn nv_sinh(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 {
        return x;
    }
    let ax = x.abs();
    let mag = if ax < 0.25 {
        // x + x^3/6 + ... + x^11/11!  (|x|<0.25 keeps truncation below 1 ULP)
        let z = ax * ax;
        const C: [f64; 6] = [
            2.505_210_838_544_172e-8,   // 1/11!
            2.755_731_922_398_589e-6,   // 1/9!
            1.984_126_984_126_984e-4,   // 1/7!
            8.333_333_333_333_333e-3,   // 1/5!
            1.666_666_666_666_666_6e-1, // 1/3!
            1.0,
        ];
        ax * horner_fma(z, &C)
    } else if ax > 710.5 {
        f64::INFINITY
    } else {
        let t = nv_exp(ax);
        if t.is_infinite() {
            nv_exp(ax - std::f64::consts::LN_2)
        } else {
            0.5 * t - 0.5 / t
        }
    };
    if x < 0.0 {
        -mag
    } else {
        mag
    }
}

/// cbrt via the classic bit-trick seed (`bits/3 + magic`) polished with
/// three Halley iterations — a genuinely different algorithm from the
/// host libm the AMD-like library uses, disagreeing in the last ULP on a
/// minority of arguments.
pub fn nv_cbrt(x: f64) -> f64 {
    if x == 0.0 || x.is_nan() || x.is_infinite() {
        return x;
    }
    let neg = x < 0.0;
    let mut a = x.abs();
    // normalize subnormals so the bit-trick seed is valid
    let mut post_scale = 1.0;
    if a < f64::MIN_POSITIVE {
        a *= 2f64.powi(54);
        post_scale = 2f64.powi(-18); // cbrt(2^54) = 2^18
    }
    // seed: ~3% relative accuracy
    let mut t = f64::from_bits(a.to_bits() / 3 + 0x2A9F_84FE_36D2_2425);
    // Halley iterations: cubic convergence, 3 rounds reach ~1 ULP
    for _ in 0..3 {
        let t3 = t * t * t;
        t *= (t3 + 2.0 * a) / (2.0 * t3 + a);
    }
    let r = t * post_scale;
    if neg {
        -r
    } else {
        r
    }
}

/// The case-study-2 `ceil`: magic-number path that returns 0 for positive
/// values below the threshold instead of 1 (Fig. 5: `ceil(1.5955E-125)` is
/// 0 under nvcc, 1 under hipcc).
pub fn nv_ceil_f64(x: f64, quirk: bool) -> f64 {
    if quirk && x > 0.0 && x < 5.421_010_862_427_522e-20 {
        // 2^-64: values this small vanish through the magic-number add
        return 0.0;
    }
    x.ceil()
}

/// FP32 variant of the quirky ceil (threshold `2^-32`).
pub fn nv_ceil_f32(x: f32, quirk: bool) -> f32 {
    if quirk && x > 0.0 && x < 2.328_306_4e-10 {
        return 0.0;
    }
    x.ceil()
}

impl MathLib for NvMathLib {
    fn name(&self) -> &'static str {
        "libdevice-sim"
    }

    fn call_f64(&self, func: MathFunc, a: f64, b: f64) -> f64 {
        let q = self.quirks;
        match func {
            MathFunc::Sin => a.sin(),
            MathFunc::Cos => a.cos(),
            MathFunc::Tan => a.tan(),
            MathFunc::Asin => a.asin(),
            MathFunc::Acos => a.acos(),
            MathFunc::Atan => a.atan(),
            MathFunc::Sinh => {
                if q.transcendental_kernels {
                    nv_sinh(a)
                } else {
                    a.sinh()
                }
            }
            MathFunc::Cosh => {
                if q.transcendental_kernels {
                    nv_cosh(a)
                } else {
                    a.cosh()
                }
            }
            MathFunc::Tanh => a.tanh(),
            MathFunc::Exp => {
                if q.transcendental_kernels {
                    nv_exp(a)
                } else {
                    a.exp()
                }
            }
            MathFunc::Exp2 => {
                if q.transcendental_kernels {
                    nv_exp2(a)
                } else {
                    a.exp2()
                }
            }
            MathFunc::Log => {
                if q.transcendental_kernels {
                    nv_log(a)
                } else {
                    a.ln()
                }
            }
            MathFunc::Log2 => {
                if q.transcendental_kernels {
                    nv_log2(a)
                } else {
                    a.log2()
                }
            }
            MathFunc::Log10 => {
                if q.transcendental_kernels {
                    nv_log10(a)
                } else {
                    a.log10()
                }
            }
            MathFunc::Sqrt => a.sqrt(),
            MathFunc::Cbrt => {
                if q.transcendental_kernels {
                    nv_cbrt(a)
                } else {
                    a.cbrt()
                }
            }
            MathFunc::Fabs => a.abs(),
            MathFunc::Floor => a.floor(),
            MathFunc::Ceil => nv_ceil_f64(a, q.ceil_tiny),
            MathFunc::Trunc => a.trunc(),
            MathFunc::Fmod => {
                if q.fmod_algorithms {
                    fmod_exact_f64(a, b)
                } else {
                    a % b
                }
            }
            MathFunc::Pow => {
                if q.transcendental_kernels {
                    nv_pow(a, b)
                } else {
                    a.powf(b)
                }
            }
            MathFunc::Fmin => a.min(b),
            MathFunc::Fmax => a.max(b),
            MathFunc::Atan2 => a.atan2(b),
            MathFunc::Hypot => a.hypot(b),
            MathFunc::Expm1 => {
                if q.transcendental_kernels {
                    super::special::expm1_nv(a)
                } else {
                    a.exp_m1()
                }
            }
            MathFunc::Log1p => {
                if q.transcendental_kernels {
                    super::special::log1p_nv(a)
                } else {
                    a.ln_1p()
                }
            }
            MathFunc::Asinh => {
                if q.transcendental_kernels {
                    super::special::asinh_nv(a)
                } else {
                    a.asinh()
                }
            }
            MathFunc::Acosh => {
                if q.transcendental_kernels {
                    super::special::acosh_nv(a)
                } else {
                    a.acosh()
                }
            }
            MathFunc::Atanh => {
                if q.transcendental_kernels {
                    super::special::atanh_nv(a)
                } else {
                    a.atanh()
                }
            }
            MathFunc::Round => a.round(),
            MathFunc::Rint => a.round_ties_even(),
            MathFunc::Rsqrt => {
                if q.transcendental_kernels {
                    super::special::rsqrt_nv(a)
                } else {
                    super::special::rsqrt_amd(a)
                }
            }
            MathFunc::Erf => {
                if q.transcendental_kernels {
                    super::special::erf_nv(a)
                } else {
                    super::special::erf_amd(a)
                }
            }
            MathFunc::Tgamma => {
                if q.transcendental_kernels {
                    super::special::tgamma_nv(a)
                } else {
                    super::special::tgamma_amd(a)
                }
            }
        }
    }

    fn call_f32(&self, func: MathFunc, a: f32, b: f32) -> f32 {
        let q = self.quirks;
        match func {
            // FP32 entry points evaluate the FP64 kernel and round — both
            // vendors do this for the accurate paths, so they agree here
            // and FP32 divergence at O0 is confined to fmodf/ceilf/powf.
            MathFunc::Ceil => nv_ceil_f32(a, q.ceil_tiny),
            MathFunc::Fmod => {
                if q.fmod_algorithms {
                    fmod_exact_f32(a, b)
                } else {
                    a % b
                }
            }
            MathFunc::Pow => {
                if q.transcendental_kernels {
                    nv_pow(a as f64, b as f64) as f32
                } else {
                    (a as f64).powf(b as f64) as f32
                }
            }
            _ => via_f64_f32(func, a, b),
        }
    }

    // call_fast_f64 deliberately stays on the accurate path (the trait
    // default): no vendor ships approximate FP64 intrinsics, and the
    // paper's FP64 tables show no NaN-Zero/NaN-Num classes that a
    // special-case-free FP64 pow would create.

    fn call_fast_f32(&self, func: MathFunc, a: f32, b: f32) -> f32 {
        if self.quirks.fast_intrinsics && func.has_fast_f32_variant() {
            fast::nv_fast_f32(func, a, b)
        } else {
            self.call_f32(func, a, b)
        }
    }
}

/// Evaluate an FP32 entry point through the FP64 kernel (shared accurate
/// path for both vendors).
pub(crate) fn via_f64_f32(func: MathFunc, a: f32, b: f32) -> f32 {
    let (a64, b64) = (a as f64, b as f64);
    let r = match func {
        MathFunc::Sin => a64.sin(),
        MathFunc::Cos => a64.cos(),
        MathFunc::Tan => a64.tan(),
        MathFunc::Asin => a64.asin(),
        MathFunc::Acos => a64.acos(),
        MathFunc::Atan => a64.atan(),
        MathFunc::Sinh => a64.sinh(),
        MathFunc::Cosh => a64.cosh(),
        MathFunc::Tanh => a64.tanh(),
        MathFunc::Exp => a64.exp(),
        MathFunc::Exp2 => a64.exp2(),
        MathFunc::Log => a64.ln(),
        MathFunc::Log2 => a64.log2(),
        MathFunc::Log10 => a64.log10(),
        MathFunc::Sqrt => return a.sqrt(), // HW op, compute natively
        MathFunc::Cbrt => a64.cbrt(),
        MathFunc::Fabs => return a.abs(),
        MathFunc::Floor => return a.floor(),
        MathFunc::Ceil => return a.ceil(),
        MathFunc::Trunc => return a.trunc(),
        MathFunc::Fmod => return a % b,
        MathFunc::Pow => a64.powf(b64),
        MathFunc::Fmin => return a.min(b),
        MathFunc::Fmax => return a.max(b),
        MathFunc::Atan2 => a64.atan2(b64),
        MathFunc::Hypot => a64.hypot(b64),
        MathFunc::Expm1 => a64.exp_m1(),
        MathFunc::Log1p => a64.ln_1p(),
        MathFunc::Asinh => a64.asinh(),
        MathFunc::Acosh => a64.acosh(),
        MathFunc::Atanh => a64.atanh(),
        MathFunc::Round => return a.round(),
        MathFunc::Rint => return a.round_ties_even(),
        MathFunc::Rsqrt => super::special::rsqrt_amd(a64),
        MathFunc::Erf => super::special::erf_amd(a64),
        MathFunc::Tgamma => super::special::tgamma_amd(a64),
    };
    r as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::ulp::ulp_diff_f64;

    #[test]
    fn nv_exp_accuracy_within_2_ulp() {
        let mut x = -700.0;
        while x < 700.0 {
            let got = nv_exp(x);
            let want = x.exp();
            let d = ulp_diff_f64(got, want).unwrap();
            assert!(d <= 2, "exp({x}): got={got} want={want} ulp={d}");
            x += 1.234567;
        }
    }

    #[test]
    fn nv_exp_sometimes_differs_from_std() {
        // the whole point: ~1-ULP disagreements exist
        let mut diffs = 0;
        let mut x = -20.0;
        while x < 20.0 {
            if nv_exp(x).to_bits() != x.exp().to_bits() {
                diffs += 1;
            }
            x += 0.01;
        }
        assert!(diffs > 0, "expected some last-ULP differences");
        assert!(diffs < 4000, "but not on every argument: {diffs}/4000");
    }

    #[test]
    fn nv_exp_special_values() {
        assert_eq!(nv_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(nv_exp(f64::NEG_INFINITY), 0.0);
        assert!(nv_exp(f64::NAN).is_nan());
        assert_eq!(nv_exp(0.0), 1.0);
        assert_eq!(nv_exp(710.0), f64::INFINITY);
        assert_eq!(nv_exp(-746.0), 0.0);
    }

    #[test]
    fn nv_log_accuracy_within_2_ulp() {
        for &x in &[1e-300, 1e-10, 0.5, 1.0, 1.5, 2.0, 10.0, 1e10, 1e300] {
            let got = nv_log(x);
            let want = x.ln();
            let d = ulp_diff_f64(got, want).unwrap();
            assert!(d <= 2, "log({x}): got={got} want={want} ulp={d}");
        }
    }

    #[test]
    fn nv_log_special_values() {
        assert!(nv_log(-1.0).is_nan());
        assert_eq!(nv_log(0.0), f64::NEG_INFINITY);
        assert_eq!(nv_log(-0.0), f64::NEG_INFINITY);
        assert_eq!(nv_log(f64::INFINITY), f64::INFINITY);
        assert!(nv_log(f64::NAN).is_nan());
        assert_eq!(nv_log(1.0), 0.0);
    }

    #[test]
    fn nv_log_handles_subnormals() {
        let x = 1e-310;
        let d = ulp_diff_f64(nv_log(x), x.ln()).unwrap();
        assert!(d <= 2, "log(subnormal) ulp={d}");
    }

    #[test]
    fn nv_exp2_exact_on_integers() {
        for e in [-1000i32, -100, -1, 0, 1, 10, 100, 1000] {
            assert_eq!(nv_exp2(e as f64), 2f64.powi(e), "2^{e}");
        }
    }

    #[test]
    fn nv_pow_special_cases() {
        assert_eq!(nv_pow(2.0, 0.0), 1.0);
        assert_eq!(nv_pow(1.0, f64::NAN), 1.0);
        assert_eq!(nv_pow(0.0, 2.0), 0.0);
        assert_eq!(nv_pow(0.0, -2.0), f64::INFINITY);
        assert_eq!(nv_pow(-0.0, -3.0), f64::NEG_INFINITY);
        // the exp(y·ln x) kernel is ~2 ULP, so integer powers land within
        // a few ULP rather than exactly — realistic for GPU pow
        assert!(ulp_diff_f64(nv_pow(-2.0, 2.0), 4.0).unwrap() <= 4);
        assert!(ulp_diff_f64(nv_pow(-2.0, 3.0), -8.0).unwrap() <= 4);
        assert!(nv_pow(-2.0, 3.0) < 0.0);
        assert!(nv_pow(-2.0, 2.5).is_nan());
        assert_eq!(nv_pow(f64::INFINITY, 2.0), f64::INFINITY);
        assert_eq!(nv_pow(f64::NEG_INFINITY, 3.0), f64::NEG_INFINITY);
        assert_eq!(nv_pow(0.5, f64::INFINITY), 0.0);
        assert_eq!(nv_pow(2.0, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn nv_pow_fast_drops_special_cases() {
        // finite-math-only: negative base goes through log -> NaN
        assert!(nv_pow_fast(-2.0, 2.0).is_nan());
        assert_eq!(nv_pow(-2.0, 2.0), 4.0);
    }

    #[test]
    fn nv_pow_accuracy_moderate_args() {
        for &(x, y) in &[(2.0, 10.0), (3.0, 3.0), (1.5, -7.0), (0.3, 12.5)] {
            let got = nv_pow(x, y);
            let want = x.powf(y);
            let d = ulp_diff_f64(got, want).unwrap();
            assert!(d <= 512, "pow({x},{y}) ulp={d}"); // a few ULP of slop is realistic for GPU pow
        }
    }

    #[test]
    fn nv_cosh_sinh_accuracy() {
        for &x in &[0.0, 1e-10, 0.5, 1.0, 5.0, 100.0, 700.0] {
            let d = ulp_diff_f64(nv_cosh(x), x.cosh()).unwrap();
            assert!(d <= 8, "cosh({x}) ulp={d}");
            let d = ulp_diff_f64(nv_sinh(x), x.sinh()).unwrap();
            assert!(d <= 8, "sinh({x}) ulp={d}");
        }
    }

    #[test]
    fn nv_cosh_overflow_boundary() {
        assert_eq!(nv_cosh(711.0), f64::INFINITY);
        assert!(nv_cosh(710.0).is_finite()); // cosh overflows at ~710.47
        assert_eq!(nv_cosh(f64::NEG_INFINITY), f64::INFINITY);
    }

    #[test]
    fn nv_sinh_is_odd_and_exact_at_zero() {
        assert_eq!(nv_sinh(0.0), 0.0);
        assert!(nv_sinh(-0.0).is_sign_negative());
        assert_eq!(nv_sinh(-2.5), -nv_sinh(2.5));
    }

    #[test]
    fn nv_cbrt_accuracy_within_2_ulp() {
        for &x in &[1e-300, 0.001, 0.5, 1.0, 2.0, 27.0, 1e10, 1e300, 1e-310] {
            let d = ulp_diff_f64(nv_cbrt(x), x.cbrt()).unwrap();
            assert!(d <= 2, "cbrt({x}): {} vs {} ({d} ulp)", nv_cbrt(x), x.cbrt());
        }
    }

    #[test]
    fn nv_cbrt_special_values_and_sign() {
        assert_eq!(nv_cbrt(0.0), 0.0);
        assert!(nv_cbrt(-0.0).is_sign_negative());
        assert_eq!(nv_cbrt(f64::INFINITY), f64::INFINITY);
        assert_eq!(nv_cbrt(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(nv_cbrt(f64::NAN).is_nan());
        assert_eq!(nv_cbrt(-8.0), -nv_cbrt(8.0));
        assert!((nv_cbrt(27.0) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn nv_cbrt_sometimes_differs_from_std() {
        let mut diffs = 0;
        let mut x = 0.1;
        for _ in 0..1000 {
            if nv_cbrt(x).to_bits() != x.cbrt().to_bits() {
                diffs += 1;
            }
            x *= 1.021;
        }
        assert!(diffs > 0, "expected last-ULP disagreement");
        assert!(diffs < 900, "but mostly agreement: {diffs}/1000");
    }

    #[test]
    fn ceil_quirk_matches_case_study_2() {
        // Fig. 5: ceil(1.5955E-125) -> 0 on nvcc, 1 on hipcc
        assert_eq!(nv_ceil_f64(1.5955e-125, true), 0.0);
        assert_eq!(1.5955e-125f64.ceil(), 1.0);
        // quirk off -> IEEE
        assert_eq!(nv_ceil_f64(1.5955e-125, false), 1.0);
        // above the threshold -> IEEE either way
        assert_eq!(nv_ceil_f64(1e-10, true), 1.0);
        assert_eq!(nv_ceil_f64(2.5, true), 3.0);
        // negative tiny: ceil is -0 on both paths
        assert_eq!(nv_ceil_f64(-1e-125, true), 0.0);
    }

    #[test]
    fn ceil_quirk_f32() {
        assert_eq!(nv_ceil_f32(1e-12f32, true), 0.0);
        assert_eq!(nv_ceil_f32(1e-12f32, false), 1.0);
        assert_eq!(nv_ceil_f32(0.5f32, true), 1.0);
    }

    #[test]
    fn ldexp_handles_extreme_scales() {
        assert_eq!(ldexp_f64(1.0, 2000), f64::INFINITY);
        assert_eq!(ldexp_f64(1.0, -2000), 0.0);
        assert_eq!(ldexp_f64(1.5, 10), 1536.0);
        assert_eq!(ldexp_f64(1.0, -1074), f64::from_bits(1));
    }

    #[test]
    fn dispatch_uses_quirky_kernels() {
        let lib = NvMathLib::default();
        assert_eq!(lib.call_f64(MathFunc::Ceil, 1.5955e-125, 0.0), 0.0);
        assert_eq!(lib.call_f64(MathFunc::Fmod, 5.5, 2.0), 5.5f64 % 2.0);
        // quirks disabled -> std semantics
        let plain = NvMathLib { quirks: QuirkSet::none() };
        assert_eq!(plain.call_f64(MathFunc::Ceil, 1.5955e-125, 0.0), 1.0);
        assert_eq!(plain.call_f64(MathFunc::Exp, 1.0, 0.0), 1f64.exp());
    }

    #[test]
    fn f32_accurate_path_is_f64_downround() {
        let lib = NvMathLib::default();
        let x = 1.37f32;
        assert_eq!(lib.call_f32(MathFunc::Sin, x, 0.0), (x as f64).sin() as f32);
        assert_eq!(lib.call_f32(MathFunc::Exp, x, 0.0), (x as f64).exp() as f32);
    }
}
