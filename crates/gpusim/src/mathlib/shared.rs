//! Numerical kernels shared by (or contrasted between) the vendor
//! libraries.
//!
//! The two `fmod` algorithms here are the heart of the paper's case study 1
//! (Fig. 4):
//!
//! * [`fmod_exact_f64`] — the classic bit-level long-division remainder
//!   (the algorithm behind NVIDIA's SASS/PTX "floating-point arithmetic and
//!   bitwise manipulation" implementation the paper describes). It is exact
//!   for every input.
//! * [`fmod_chunked_f64`] — a floating-point chunked remainder in the style
//!   of a `__ocml_fmod_f64` software path: repeatedly subtract
//!   `trunc(x/d)·d` for scaled divisors `d`. A single *fused* pass keeps it
//!   **exact whenever the operand exponents differ by ≤ 52**; beyond that
//!   the software path switches to unfused ~30-bit chunks whose roundings
//!   decorrelate the low bits — so the two algorithms agree on all mundane
//!   operand ratios and genuinely diverge for the extreme ratios that
//!   Varity-style inputs produce (the paper's failing input has
//!   `x/y ≈ 1e596`).

use fpcore::bits;

/// Exact `fmod` for binary64 via bit-level long division (musl-style).
///
/// ```
/// use gpusim::mathlib::shared::{fmod_exact_f64, fmod_chunked_f64};
///
/// // mundane operand ratios: the two vendor algorithms agree exactly
/// assert_eq!(fmod_exact_f64(5.5, 2.0), fmod_chunked_f64(5.5, 2.0));
///
/// // the paper's Fig. 4 operands (ratio ~1e596): they genuinely diverge
/// let (x, y) = (1.5917195493481116e289, 1.5793e-307);
/// assert_ne!(
///     fmod_exact_f64(x, y).to_bits(),
///     fmod_chunked_f64(x, y).to_bits(),
/// );
/// ```
#[allow(clippy::eq_op)] // (x*y)/(x*y) is the deliberate NaN-propagation idiom
pub fn fmod_exact_f64(x: f64, y: f64) -> f64 {
    let mut uxi = x.to_bits();
    let mut uyi = y.to_bits();
    let mut ex = ((uxi >> 52) & 0x7ff) as i32;
    let mut ey = ((uyi >> 52) & 0x7ff) as i32;
    let sx = uxi & bits::F64_SIGN_MASK;

    // domain errors / trivial cases
    if uyi << 1 == 0 || y.is_nan() || ex == 0x7ff {
        return (x * y) / (x * y); // NaN with the usual propagation
    }
    if uxi << 1 <= uyi << 1 {
        if uxi << 1 == uyi << 1 {
            return 0.0 * x; // signed zero matching x
        }
        return x;
    }

    // normalize significands
    if ex == 0 {
        let mut i = uxi << 12;
        while i >> 63 == 0 {
            ex -= 1;
            i <<= 1;
        }
        uxi <<= (-ex + 1) as u32;
    } else {
        uxi &= u64::MAX >> 12;
        uxi |= 1u64 << 52;
    }
    if ey == 0 {
        let mut i = uyi << 12;
        while i >> 63 == 0 {
            ey -= 1;
            i <<= 1;
        }
        uyi <<= (-ey + 1) as u32;
    } else {
        uyi &= u64::MAX >> 12;
        uyi |= 1u64 << 52;
    }

    // x mod y, one bit at a time
    while ex > ey {
        let i = uxi.wrapping_sub(uyi);
        if i >> 63 == 0 {
            if i == 0 {
                return 0.0 * x;
            }
            uxi = i;
        }
        uxi <<= 1;
        ex -= 1;
    }
    let i = uxi.wrapping_sub(uyi);
    if i >> 63 == 0 {
        if i == 0 {
            return 0.0 * x;
        }
        uxi = i;
    }
    while uxi >> 52 == 0 {
        uxi <<= 1;
        ex -= 1;
    }

    // reassemble
    if ex > 0 {
        uxi -= 1u64 << 52;
        uxi |= (ex as u64) << 52;
    } else {
        uxi >>= (-ex + 1) as u32;
    }
    f64::from_bits(uxi | sx)
}

/// Exact `fmodf` for binary32 via bit-level long division.
#[allow(clippy::eq_op)]
pub fn fmod_exact_f32(x: f32, y: f32) -> f32 {
    let mut uxi = x.to_bits();
    let mut uyi = y.to_bits();
    let mut ex = ((uxi >> 23) & 0xff) as i32;
    let mut ey = ((uyi >> 23) & 0xff) as i32;
    let sx = uxi & bits::F32_SIGN_MASK;

    if uyi << 1 == 0 || y.is_nan() || ex == 0xff {
        return (x * y) / (x * y);
    }
    if uxi << 1 <= uyi << 1 {
        if uxi << 1 == uyi << 1 {
            return 0.0 * x;
        }
        return x;
    }

    if ex == 0 {
        let mut i = uxi << 9;
        while i >> 31 == 0 {
            ex -= 1;
            i <<= 1;
        }
        uxi <<= (-ex + 1) as u32;
    } else {
        uxi &= u32::MAX >> 9;
        uxi |= 1u32 << 23;
    }
    if ey == 0 {
        let mut i = uyi << 9;
        while i >> 31 == 0 {
            ey -= 1;
            i <<= 1;
        }
        uyi <<= (-ey + 1) as u32;
    } else {
        uyi &= u32::MAX >> 9;
        uyi |= 1u32 << 23;
    }

    while ex > ey {
        let i = uxi.wrapping_sub(uyi);
        if i >> 31 == 0 {
            if i == 0 {
                return 0.0 * x;
            }
            uxi = i;
        }
        uxi <<= 1;
        ex -= 1;
    }
    let i = uxi.wrapping_sub(uyi);
    if i >> 31 == 0 {
        if i == 0 {
            return 0.0 * x;
        }
        uxi = i;
    }
    while uxi >> 23 == 0 {
        uxi <<= 1;
        ex -= 1;
    }

    if ex > 0 {
        uxi -= 1u32 << 23;
        uxi |= (ex as u32) << 23;
    } else {
        uxi >>= (-ex + 1) as u32;
    }
    f32::from_bits(uxi | sx)
}

/// Chunked floating-point `fmod` for binary64 (OCML-software-path style).
///
/// For `|x/y| < 2^53` a single fused pass computes the exact remainder, so
/// the result agrees bit-for-bit with [`fmod_exact_f64`]. Beyond that the
/// software path reduces the quotient in ~52-bit chunks with an *unfused*
/// `r − q·d` update: the product rounds once and the subtraction rounds
/// again, so the low bits of the remainder drift away from the exact result
/// — the divergence mechanism of the paper's Fig. 4, which fires only for
/// extreme operand ratios (the paper's failing input has `x/y ≈ 1e596`).
#[allow(clippy::eq_op)]
pub fn fmod_chunked_f64(x: f64, y: f64) -> f64 {
    if x.is_nan() || y.is_nan() || x.is_infinite() || y == 0.0 {
        return (x * y) / (x * y);
    }
    if y.is_infinite() || x == 0.0 {
        return x;
    }
    let ax = x.abs();
    let ay = y.abs();
    if ax < ay {
        return x;
    }
    let mut r = ax;
    if bits::exponent_f64(r) - bits::exponent_f64(ay) <= 52 {
        // fast path: quotient fits one chunk; the fused update is exact
        while r >= ay {
            let q = (r / ay).trunc();
            r = (-q).mul_add(ay, r);
            if r < 0.0 {
                r += ay;
            }
        }
        return bits::copysign_bits_f64(r, x);
    }
    // big-ratio software path: unfused ~30-bit chunk updates. `q*d` and
    // the subtraction each round once, so every chunk injects ~2^-22
    // relative error into the running remainder — after tens of chunks the
    // low bits are fully decorrelated from the exact remainder (while the
    // magnitude stays a valid remainder in [0, ay)).
    while r >= ay {
        let e = bits::exponent_f64(r) - bits::exponent_f64(ay);
        let d = if e > 30 { ldexp_f64(ay, e - 30) } else { ay };
        let q = (r / d).trunc();
        r -= q * d; // two roundings: the drift source
        if r < 0.0 {
            r += d;
        }
        if q == 0.0 && d == ay {
            break; // defensive: cannot loop forever
        }
    }
    // rounding may leave a residue just above ay; clamp into range
    if r >= ay {
        r -= ay * (r / ay).trunc();
        if r < 0.0 {
            r += ay;
        }
    }
    bits::copysign_bits_f64(r.abs().min(ay), x)
}

/// Chunked floating-point `fmodf` for binary32: exact (fused single pass)
/// when `|x/y| < 2^24`, lossy unfused chunks beyond.
#[allow(clippy::eq_op)]
pub fn fmod_chunked_f32(x: f32, y: f32) -> f32 {
    if x.is_nan() || y.is_nan() || x.is_infinite() || y == 0.0 {
        return (x * y) / (x * y);
    }
    if y.is_infinite() || x == 0.0 {
        return x;
    }
    let ax = x.abs();
    let ay = y.abs();
    if ax < ay {
        return x;
    }
    let mut r = ax;
    if bits::exponent_f32(r) - bits::exponent_f32(ay) <= 23 {
        while r >= ay {
            let q = (r / ay).trunc();
            r = (-q).mul_add(ay, r);
            if r < 0.0 {
                r += ay;
            }
        }
        return bits::copysign_bits_f32(r, x);
    }
    while r >= ay {
        let e = bits::exponent_f32(r) - bits::exponent_f32(ay);
        let d = if e > 12 { ldexp_f32(ay, e - 12) } else { ay };
        let q = (r / d).trunc();
        r -= q * d;
        if r < 0.0 {
            r += d;
        }
        if q == 0.0 && d == ay {
            break;
        }
    }
    if r >= ay {
        r -= ay * (r / ay).trunc();
        if r < 0.0 {
            r += ay;
        }
    }
    bits::copysign_bits_f32(r.abs().min(ay), x)
}

/// Scale `x` by `2^n` with correct saturation and gradual underflow,
/// multiplying in clamped chunks (ldexp).
pub fn ldexp_f64(x: f64, n: i32) -> f64 {
    let mut x = x;
    let mut n = n;
    while n > 1000 {
        x *= bits::exp2i_f64(1000);
        n -= 1000;
        if !x.is_finite() {
            return x;
        }
    }
    while n < -1000 {
        x *= bits::exp2i_f64(-1000);
        n += 1000;
        if x == 0.0 {
            return x;
        }
    }
    x * bits::exp2i_f64(n)
}

/// Scale an `f32` by `2^n` with saturation (ldexpf).
pub fn ldexp_f32(x: f32, n: i32) -> f32 {
    let mut x = x;
    let mut n = n;
    while n > 120 {
        x *= bits::exp2i_f32(120);
        n -= 120;
        if !x.is_finite() {
            return x;
        }
    }
    while n < -120 {
        x *= bits::exp2i_f32(-120);
        n += 120;
        if x == 0.0 {
            return x;
        }
    }
    x * bits::exp2i_f32(n)
}

/// Horner polynomial evaluation with fused multiply-adds (the scheme the
/// NVIDIA-like kernels use; FMA-capable hardware contracts every step).
#[inline]
pub fn horner_fma(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = coeffs[0];
    for &c in &coeffs[1..] {
        acc = acc.mul_add(x, c);
    }
    acc
}

/// Horner polynomial evaluation with separate multiply and add roundings
/// (the scheme contrasted against [`horner_fma`] in ablation benches).
#[inline]
pub fn horner_mul_add(x: f64, coeffs: &[f64]) -> f64 {
    let mut acc = coeffs[0];
    for &c in &coeffs[1..] {
        acc = acc * x + c;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fmod_matches_rust_rem_f64() {
        let cases = [
            (5.5, 2.0),
            (-5.5, 2.0),
            (5.5, -2.0),
            (1e300, 3.7),
            (1e-300, 7.1e-301),
            (1.5917195493481116e289, 1.5793e-307),
            (0.1, 0.03),
            (f64::MIN_POSITIVE, 1e-310),
            (1e-310, 3e-312),
        ];
        for &(x, y) in &cases {
            let got = fmod_exact_f64(x, y);
            let want = x % y; // Rust's % on floats is libm fmod (exact)
            assert_eq!(got.to_bits(), want.to_bits(), "fmod({x},{y})");
        }
    }

    #[test]
    fn exact_fmod_matches_rust_rem_f32() {
        let cases: [(f32, f32); 6] = [
            (5.5, 2.0),
            (-7.25, 0.5),
            (3.0e38, 1.7),
            (1e-38, 3e-39),
            (1e-44, 3e-45),
            (123456.78, 0.001),
        ];
        for &(x, y) in &cases {
            let got = fmod_exact_f32(x, y);
            let want = x % y;
            assert_eq!(got.to_bits(), want.to_bits(), "fmodf({x},{y})");
        }
    }

    #[test]
    fn exact_fmod_special_cases() {
        assert!(fmod_exact_f64(1.0, 0.0).is_nan());
        assert!(fmod_exact_f64(f64::INFINITY, 2.0).is_nan());
        assert!(fmod_exact_f64(f64::NAN, 2.0).is_nan());
        assert!(fmod_exact_f64(1.0, f64::NAN).is_nan());
        assert_eq!(fmod_exact_f64(3.0, f64::INFINITY), 3.0);
        assert_eq!(fmod_exact_f64(0.0, 2.0), 0.0);
        assert!(fmod_exact_f64(-0.0, 2.0).is_sign_negative());
        // |x| == |y| -> signed zero of x
        assert_eq!(fmod_exact_f64(2.0, -2.0), 0.0);
        assert!(!fmod_exact_f64(2.0, -2.0).is_sign_negative());
    }

    #[test]
    fn chunked_fmod_agrees_below_2_53_ratio() {
        let cases = [
            (5.5, 2.0),
            (-5.5, 2.0),
            (1e10, 3.7),
            (1e15, 7.0),
            (8.123e15, 3.001e0),
            (6.7e5, 1.3e-8),
            (1.0, 3e-16),
        ];
        for &(x, y) in &cases {
            let exact = fmod_exact_f64(x, y);
            let chunked = fmod_chunked_f64(x, y);
            assert_eq!(
                exact.to_bits(),
                chunked.to_bits(),
                "fmod({x},{y}): exact={exact} chunked={chunked}"
            );
        }
    }

    #[test]
    fn chunked_fmod_diverges_for_extreme_ratio() {
        // the paper's Fig. 4 operands: ratio ~ 1e596
        let x = 1.5917195493481116e289;
        let y = 1.5793e-307;
        let exact = fmod_exact_f64(x, y);
        let chunked = fmod_chunked_f64(x, y);
        assert!(exact.is_finite() && chunked.is_finite());
        assert!(exact >= 0.0 && exact < y);
        assert!(chunked >= 0.0 && chunked < y * 1.0000001);
        assert_ne!(exact.to_bits(), chunked.to_bits(), "expected divergence for extreme ratio");
    }

    #[test]
    fn chunked_fmod_result_is_a_valid_remainder_range() {
        let cases = [(1e300, 1e-300), (1.5917195493481116e289, 1.5793e-307), (-1e280, 2.5e-200)];
        for &(x, y) in &cases {
            let r = fmod_chunked_f64(x, y);
            assert!(r.abs() <= y.abs(), "fmod({x},{y}) = {r}");
            assert_eq!(r.is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn chunked_fmod_special_cases_match_exact() {
        assert!(fmod_chunked_f64(1.0, 0.0).is_nan());
        assert!(fmod_chunked_f64(f64::INFINITY, 2.0).is_nan());
        assert_eq!(fmod_chunked_f64(3.0, f64::INFINITY), 3.0);
        assert_eq!(fmod_chunked_f64(0.0, 2.0), 0.0);
    }

    #[test]
    fn chunked_f32_agrees_below_2_24_ratio() {
        let cases: [(f32, f32); 4] = [(5.5, 2.0), (1e6, 3.7), (16777000.0, 3.0), (-9.9e5, 7.3)];
        for &(x, y) in &cases {
            assert_eq!(
                fmod_chunked_f32(x, y).to_bits(),
                fmod_exact_f32(x, y).to_bits(),
                "fmodf({x},{y})"
            );
        }
    }

    #[test]
    fn chunked_f32_diverges_for_extreme_ratio() {
        let x = 3.0e38f32;
        let y = 1.1e-38f32;
        let exact = fmod_exact_f32(x, y);
        let chunked = fmod_chunked_f32(x, y);
        assert_ne!(exact.to_bits(), chunked.to_bits());
    }

    #[test]
    fn horner_schemes_agree_on_exact_polys() {
        // integer coefficients, small x: both exact
        let coeffs = [1.0, -2.0, 3.0];
        assert_eq!(horner_fma(2.0, &coeffs), horner_mul_add(2.0, &coeffs));
        assert_eq!(horner_fma(2.0, &coeffs), 1.0 * 4.0 - 2.0 * 2.0 + 3.0);
    }

    #[test]
    fn horner_schemes_differ_in_last_ulp_sometimes() {
        // coefficients chosen so the fused and unfused paths round differently
        let coeffs = [0.1, 0.2, 0.3, 0.4];
        let mut any_diff = false;
        let mut x = 0.05;
        for _ in 0..200 {
            if horner_fma(x, &coeffs) != horner_mul_add(x, &coeffs) {
                any_diff = true;
                break;
            }
            x += 0.013;
        }
        assert!(any_diff, "expected at least one rounding difference");
    }

    #[test]
    fn exact_fmod_brute_force_cross_check() {
        // dense small-value sweep against Rust's %
        let mut x = -10.0f64;
        while x < 10.0 {
            let mut y = 0.25f64;
            while y < 3.0 {
                assert_eq!(fmod_exact_f64(x, y).to_bits(), (x % y).to_bits(), "fmod({x},{y})");
                y += 0.37;
            }
            x += 0.73;
        }
    }
}
