//! Special functions absent from the host libm (`erf`, `tgamma`) and the
//! cancellation-aware kernels (`expm1`, `log1p`, inverse hyperbolics,
//! `rsqrt`), each in two vendor flavours.
//!
//! Unlike the functions in [`super::nv`], *both* vendor variants here are
//! written from scratch (Rust's `std` has no `erf`/`tgamma`), so the
//! divergence between them is entirely under this module's control:
//!
//! * `erf` — both use a Taylor series near zero and the Gauss continued
//!   fraction for the tail, but they switch representations at different
//!   thresholds (1.75 vs 2.25) and run the continued fraction to different
//!   depths: last-ULP disagreement in the overlap regions.
//! * `tgamma` — both use the same Lanczos(g=7) data; the NVIDIA-like
//!   variant accumulates the partial fractions with FMA, the AMD-like one
//!   with separate multiply/add roundings.
//! * `rsqrt` — `1/sqrt(x)` (NVIDIA-like) vs `sqrt(1/x)` (AMD-like): both
//!   are two correctly rounded operations, composed in different orders.

use super::shared::horner_fma;

const SQRT_PI: f64 = 1.772_453_850_905_516;

/// Taylor series of erf around 0: `2/√π · Σ (-1)^n x^(2n+1) / (n!(2n+1))`.
/// Accurate to double precision for `|x| ≤ ~2.5` with enough terms.
fn erf_taylor(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // x^(2n+1)/n!
    let mut sum = x;
    for n in 1..60 {
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < sum.abs() * 1e-18 {
            break;
        }
    }
    2.0 / SQRT_PI * sum
}

/// Gauss continued fraction for erfc, valid for `x ≥ 1`:
/// `erfc(x) = e^{-x²}/√π · 1/(x + ½/(x + 1/(x + 3⁄2/(x + …))))`.
/// Evaluated bottom-up with `depth` levels.
fn erfc_cf(x: f64, depth: u32) -> f64 {
    let mut f = 0.0;
    for k in (1..=depth).rev() {
        f = (k as f64 / 2.0) / (x + f);
    }
    (-x * x).exp() / SQRT_PI / (x + f)
}

/// NVIDIA-like erf: Taylor below 1.75, continued fraction (depth 60) above.
pub fn erf_nv(x: f64) -> f64 {
    erf_impl(x, 1.75, 60)
}

/// AMD-like erf: Taylor below 2.25, continued fraction (depth 40) above.
pub fn erf_amd(x: f64) -> f64 {
    erf_impl(x, 2.25, 40)
}

fn erf_impl(x: f64, split: f64, cf_depth: u32) -> f64 {
    if x.is_nan() {
        return x;
    }
    let ax = x.abs();
    let mag = if ax <= split {
        erf_taylor(ax)
    } else if ax > 6.5 {
        1.0 // erfc < 1e-19: rounds to 1
    } else {
        1.0 - erfc_cf(ax, cf_depth)
    };
    if x < 0.0 {
        -mag
    } else {
        mag
    }
}

/// Lanczos g=7, n=9 coefficients (Boost/GSL-standard values).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// tgamma via Lanczos; `fused` selects FMA vs unfused accumulation of the
/// partial-fraction series (the vendor contrast).
fn tgamma_impl(x: f64, fused: bool) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x == 0.0 {
        // Γ(±0) = ±Inf
        return if x.is_sign_negative() { f64::NEG_INFINITY } else { f64::INFINITY };
    }
    if x < 0.0 && x.fract() == 0.0 {
        return f64::NAN; // poles at negative integers
    }
    if x.is_infinite() {
        return if x > 0.0 { x } else { f64::NAN };
    }
    if x < 0.5 {
        // reflection: Γ(x) Γ(1−x) = π / sin(πx)
        let s = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI / (s * tgamma_impl(1.0 - x, fused));
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        let denom = x + i as f64;
        if fused {
            // acc = acc + c/denom with one fused step on the reciprocal
            acc = c.mul_add(1.0 / denom, acc);
        } else {
            acc += c / denom;
        }
    }
    let t = x + LANCZOS_G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * acc
}

/// NVIDIA-like tgamma (fused accumulation).
pub fn tgamma_nv(x: f64) -> f64 {
    tgamma_impl(x, true)
}

/// AMD-like tgamma (unfused accumulation).
pub fn tgamma_amd(x: f64) -> f64 {
    tgamma_impl(x, false)
}

/// NVIDIA-like expm1: Taylor kernel below 0.5, `exp(x) − 1` above
/// (using the vendor's own exp).
pub fn expm1_nv(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 {
        return x;
    }
    if x.abs() < 0.5 {
        // x(1 + x/2! + x²/3! + …) to x¹⁴: cancellation-free, truncation
        // below an ULP at |x| = 0.5
        const C: [f64; 14] = [
            1.147_074_559_772_972_5e-11, // 1/14!
            1.605_904_383_682_161_5e-10, // 1/13!
            2.087_675_698_786_810e-9,    // 1/12!
            2.505_210_838_544_172e-8,    // 1/11!
            2.755_731_922_398_589e-7,    // 1/10!
            2.755_731_922_398_589e-6,    // 1/9!
            2.480_158_730_158_730e-5,    // 1/8!
            1.984_126_984_126_984e-4,    // 1/7!
            1.388_888_888_888_889e-3,    // 1/6!
            8.333_333_333_333_333e-3,    // 1/5!
            4.166_666_666_666_666e-2,    // 1/4!
            1.666_666_666_666_666_6e-1,  // 1/3!
            5.0e-1,                      // 1/2!
            1.0,
        ];
        x * horner_fma(x, &C)
    } else {
        super::nv::nv_exp(x) - 1.0
    }
}

/// NVIDIA-like log1p: `log(w) + (x − (w−1))/w` correction with the
/// vendor's own log.
pub fn log1p_nv(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 {
        return x;
    }
    if x <= -1.0 {
        return if x == -1.0 { f64::NEG_INFINITY } else { f64::NAN };
    }
    let w = 1.0 + x;
    let correction = if w.is_finite() && w > 0.0 { (x - (w - 1.0)) / w } else { 0.0 };
    super::nv::nv_log(w) + correction
}

/// NVIDIA-like asinh: the cancellation-free `log1p` form
/// `log1p(x + x²/(1 + √(x²+1)))`, with the large-argument form `ln(2x)`
/// to dodge the overflow of `x²`.
pub fn asinh_nv(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 || x.is_infinite() {
        return x;
    }
    let ax = x.abs();
    let mag = if ax > 1e154 {
        super::nv::nv_log(ax) + std::f64::consts::LN_2
    } else {
        let t = ax * ax;
        log1p_nv(ax + t / (1.0 + (t + 1.0).sqrt()))
    };
    if x < 0.0 {
        -mag
    } else {
        mag
    }
}

/// NVIDIA-like acosh: `ln(x + √(x²−1))` via the vendor log.
pub fn acosh_nv(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x < 1.0 {
        return f64::NAN;
    }
    if x > 1e154 {
        return super::nv::nv_log(x) + std::f64::consts::LN_2;
    }
    super::nv::nv_log(x + (x * x - 1.0).sqrt())
}

/// NVIDIA-like atanh: `½ ln((1+x)/(1−x))` via the vendor log.
pub fn atanh_nv(x: f64) -> f64 {
    if x.is_nan() || x == 0.0 {
        return x;
    }
    if x.abs() > 1.0 {
        return f64::NAN;
    }
    if x.abs() == 1.0 {
        return if x > 0.0 { f64::INFINITY } else { f64::NEG_INFINITY };
    }
    // cancellation-free: ½ ln((1+x)/(1−x)) = ½ log1p(2x/(1−x)),
    // evaluated on |x| so the function is structurally odd (the rational
    // argument is not symmetric under x → −x)
    let ax = x.abs();
    let mag = 0.5 * log1p_nv(2.0 * ax / (1.0 - ax));
    if x < 0.0 {
        -mag
    } else {
        mag
    }
}

/// NVIDIA-like rsqrt: `1 / √x` (two correctly rounded ops in this order).
pub fn rsqrt_nv(x: f64) -> f64 {
    1.0 / x.sqrt()
}

/// AMD-like rsqrt: `√(1/x)` — the opposite composition order, which
/// rounds differently for many arguments.
pub fn rsqrt_amd(x: f64) -> f64 {
    (1.0 / x).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpcore::ulp::ulp_diff_f64;

    /// High-precision reference erf values (Mathematica/mpmath, 20 digits).
    const ERF_REF: &[(f64, f64)] = &[
        (0.1, 0.112_462_916_018_284_89),
        (0.5, 0.520_499_877_813_046_5),
        (1.0, 0.842_700_792_949_714_9),
        (1.5, 0.966_105_146_475_310_7),
        (2.0, 0.995_322_265_018_952_7),
        (3.0, 0.999_977_909_503_001_4),
        (4.0, 0.999_999_984_582_742_1),
    ];

    #[test]
    fn erf_matches_reference_within_4_ulp_both_vendors() {
        for &(x, want) in ERF_REF {
            for (name, f) in [("nv", erf_nv as fn(f64) -> f64), ("amd", erf_amd)] {
                let got = f(x);
                let d = ulp_diff_f64(got, want).unwrap();
                assert!(d <= 4, "{name} erf({x}) = {got}, want {want} ({d} ulp)");
            }
        }
    }

    #[test]
    fn erf_special_values() {
        for f in [erf_nv, erf_amd] {
            assert_eq!(f(0.0), 0.0);
            assert_eq!(f(f64::INFINITY), 1.0);
            assert_eq!(f(f64::NEG_INFINITY), -1.0);
            assert!(f(f64::NAN).is_nan());
            assert_eq!(f(-1.0), -f(1.0)); // odd
            assert_eq!(f(10.0), 1.0); // saturates
        }
    }

    #[test]
    fn erf_vendors_diverge_in_the_overlap_region() {
        // between the split points (1.75, 2.25) one vendor uses Taylor and
        // the other the continued fraction
        let mut diffs = 0;
        let mut x = 1.76;
        while x < 2.24 {
            if erf_nv(x).to_bits() != erf_amd(x).to_bits() {
                diffs += 1;
            }
            x += 0.01;
        }
        assert!(diffs > 0, "expected last-ULP disagreement between vendors");
    }

    #[test]
    fn tgamma_matches_known_values() {
        // Γ(n) = (n-1)! — exact integers up to rounding of the Lanczos form
        let facts = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (6.0, 120.0),
            (10.0, 362880.0),
        ];
        for &(x, want) in &facts {
            for (name, f) in [("nv", tgamma_nv as fn(f64) -> f64), ("amd", tgamma_amd)] {
                let got = f(x);
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-13, "{name} tgamma({x}) = {got}, want {want}");
            }
        }
        // Γ(1/2) = √π
        let g = tgamma_nv(0.5);
        assert!((g - SQRT_PI).abs() < 1e-14, "Γ(0.5) = {g}");
    }

    #[test]
    fn tgamma_special_values() {
        for f in [tgamma_nv, tgamma_amd] {
            assert!(f(-1.0).is_nan(), "pole at -1");
            assert!(f(-2.0).is_nan(), "pole at -2");
            assert_eq!(f(0.0), f64::INFINITY);
            assert_eq!(f(-0.0), f64::NEG_INFINITY);
            assert!(f(f64::NAN).is_nan());
            assert_eq!(f(f64::INFINITY), f64::INFINITY);
            assert!(f(f64::NEG_INFINITY).is_nan());
        }
    }

    #[test]
    fn tgamma_reflection_region() {
        // Γ(-0.5) = -2√π
        for f in [tgamma_nv, tgamma_amd] {
            let got = f(-0.5);
            let want = -2.0 * SQRT_PI;
            assert!(((got - want) / want).abs() < 1e-13, "Γ(-0.5) = {got}");
        }
    }

    #[test]
    fn tgamma_vendors_diverge_by_ulps() {
        let mut diffs = 0;
        let mut x = 0.7;
        while x < 20.0 {
            if tgamma_nv(x).to_bits() != tgamma_amd(x).to_bits() {
                diffs += 1;
            }
            x += 0.13;
        }
        assert!(diffs > 5, "fused vs unfused Lanczos must differ sometimes: {diffs}");
    }

    #[test]
    fn expm1_is_cancellation_free_near_zero() {
        let x = 1e-10;
        let got = expm1_nv(x);
        let want = x.exp_m1();
        assert!(ulp_diff_f64(got, want).unwrap() <= 2, "{got} vs {want}");
        // naive exp(x)-1 would lose half the digits here
        assert_ne!(got, x.exp() - 1.0);
    }

    #[test]
    fn expm1_matches_std_within_ulps() {
        for &x in &[-5.0, -0.4, 0.3, 1.0, 10.0, 100.0] {
            let d = ulp_diff_f64(expm1_nv(x), x.exp_m1()).unwrap();
            assert!(d <= 4, "expm1({x}) off by {d} ulp");
        }
    }

    #[test]
    fn log1p_matches_std_within_ulps() {
        for &x in &[-0.999, -0.5, 1e-15, 0.5, 10.0, 1e10] {
            let d = ulp_diff_f64(log1p_nv(x), x.ln_1p()).unwrap();
            assert!(d <= 4, "log1p({x}) off by {d} ulp");
        }
        assert_eq!(log1p_nv(-1.0), f64::NEG_INFINITY);
        assert!(log1p_nv(-1.5).is_nan());
    }

    #[test]
    fn inverse_hyperbolics_match_std_within_ulps() {
        for &x in &[0.1, 1.0, 5.0, 1e10, 1e200] {
            assert!(ulp_diff_f64(asinh_nv(x), x.asinh()).unwrap() <= 4, "asinh({x})");
        }
        for &x in &[1.0, 1.5, 5.0, 1e10, 1e200] {
            assert!(ulp_diff_f64(acosh_nv(x), x.acosh()).unwrap() <= 4, "acosh({x})");
        }
        for &x in &[-0.9, -0.5, 0.001, 0.5, 0.9] {
            assert!(ulp_diff_f64(atanh_nv(x), x.atanh()).unwrap() <= 4, "atanh({x})");
        }
        assert!(acosh_nv(0.5).is_nan());
        assert!(atanh_nv(2.0).is_nan());
        assert_eq!(atanh_nv(1.0), f64::INFINITY);
    }

    #[test]
    fn rsqrt_orders_compose_differently() {
        let mut diffs = 0;
        let mut x = 0.1;
        for _ in 0..1000 {
            let a = rsqrt_nv(x);
            let b = rsqrt_amd(x);
            assert!(ulp_diff_f64(a, b).unwrap() <= 2, "rsqrt({x}): {a} vs {b}");
            if a.to_bits() != b.to_bits() {
                diffs += 1;
            }
            x *= 1.05;
        }
        assert!(diffs > 50, "composition order must matter: {diffs}/1000");
    }

    #[test]
    fn rsqrt_special_values() {
        for f in [rsqrt_nv, rsqrt_amd] {
            assert_eq!(f(0.0), f64::INFINITY);
            assert_eq!(f(f64::INFINITY), 0.0);
            assert!(f(-1.0).is_nan());
            assert_eq!(f(1.0), 1.0);
            assert_eq!(f(4.0), 0.5);
        }
    }
}
