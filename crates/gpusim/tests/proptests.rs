//! Property-based tests for the simulated vendor math libraries.

use gpusim::mathlib::shared::{fmod_chunked_f32, fmod_chunked_f64, fmod_exact_f32, fmod_exact_f64};
use gpusim::mathlib::MathFunc;
use gpusim::{Device, DeviceKind, QuirkSet};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<f64>().prop_filter("finite", |x| x.is_finite()),
        (-300i32..300).prop_map(|e| 1.7 * 10f64.powi(e)),
        Just(0.0),
        Just(-0.0),
    ]
}

proptest! {
    #[test]
    fn exact_fmod_matches_libm_everywhere(x in any::<f64>(), y in any::<f64>()) {
        let got = fmod_exact_f64(x, y);
        let want = x % y;
        prop_assert!(
            got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
            "fmod({x},{y}): got={got} want={want}"
        );
    }

    #[test]
    fn exact_fmodf_matches_libm_everywhere(xb in any::<u32>(), yb in any::<u32>()) {
        let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
        let got = fmod_exact_f32(x, y);
        let want = x % y;
        prop_assert!(
            got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
            "fmodf({x},{y}): got={got} want={want}"
        );
    }

    #[test]
    fn chunked_fmod_is_a_remainder(x in finite_f64(), y in finite_f64()) {
        let r = fmod_chunked_f64(x, y);
        if x.is_finite() && y.is_finite() && y != 0.0 {
            prop_assert!(r.is_finite());
            prop_assert!(r.abs() <= y.abs(), "fmod({x},{y})={r}");
            if x != 0.0 && r != 0.0 {
                prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
            }
        } else {
            prop_assert!(r.is_nan() || r.to_bits() == x.to_bits());
        }
    }

    #[test]
    fn chunked_fmod_exact_for_single_chunk_ratios(mant in 1u64..(1<<50), y in finite_f64()) {
        // the exactness contract is per *exponent difference*: a single
        // fused chunk (diff <= 52) reproduces the exact remainder
        if y.is_finite() && y != 0.0 && y.abs() > 1e-200 && y.abs() < 1e200 {
            let x = y.abs() * (mant as f64);
            let diff = fpcore::bits::exponent_f64(x) - fpcore::bits::exponent_f64(y.abs());
            if x.is_finite() && x >= y.abs() && diff <= 52 {
                let a = fmod_chunked_f64(x, y);
                let b = fmod_exact_f64(x, y);
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "fmod({x},{y}): chunked={a} exact={b}"
                );
            }
        }
    }

    #[test]
    fn chunked_fmodf_is_a_remainder(xb in any::<u32>(), yb in any::<u32>()) {
        let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
        let r = fmod_chunked_f32(x, y);
        if x.is_finite() && y.is_finite() && y != 0.0 {
            prop_assert!(r.abs() <= y.abs(), "fmodf({x},{y})={r}");
        }
    }

    #[test]
    fn quirkless_devices_are_bit_identical(
        a in finite_f64(),
        b in finite_f64(),
        idx in 0usize..36,
    ) {
        let nv = Device::with_quirks(DeviceKind::NvidiaLike, QuirkSet::none());
        let amd = Device::with_quirks(DeviceKind::AmdLike, QuirkSet::none());
        let f = MathFunc::ALL[idx];
        let x = nv.mathlib().call_f64(f, a, b);
        let y = amd.mathlib().call_f64(f, a, b);
        prop_assert!(
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
            "{f}({a},{b}): nv={x} amd={y}"
        );
    }

    #[test]
    fn nv_exp_monotone_on_normals(a in -700.0f64..700.0, delta in 0.001f64..10.0) {
        let lib = Device::new(DeviceKind::NvidiaLike);
        let lo = lib.mathlib().call_f64(MathFunc::Exp, a, 0.0);
        let hi = lib.mathlib().call_f64(MathFunc::Exp, a + delta, 0.0);
        // ~1-ULP kernels must still be monotone at this granularity
        prop_assert!(lo < hi, "exp({a})={lo} >= exp({})={hi}", a + delta);
    }

    #[test]
    fn nv_log_inverts_nv_exp_approximately(a in -300.0f64..300.0) {
        let lib = Device::new(DeviceKind::NvidiaLike);
        let e = lib.mathlib().call_f64(MathFunc::Exp, a, 0.0);
        let back = lib.mathlib().call_f64(MathFunc::Log, e, 0.0);
        prop_assert!((back - a).abs() <= 1e-12 * a.abs().max(1.0), "log(exp({a})) = {back}");
    }

    #[test]
    fn accurate_f32_paths_agree_across_vendors_for_non_quirky_funcs(
        xb in any::<u32>(),
        idx in 0usize..36,
    ) {
        let f = MathFunc::ALL[idx];
        // fmod/ceil/pow are the engineered divergence points at O0
        if matches!(f, MathFunc::Fmod | MathFunc::Ceil | MathFunc::Pow) {
            return Ok(());
        }
        let x = f32::from_bits(xb);
        let nv = Device::new(DeviceKind::NvidiaLike);
        let amd = Device::new(DeviceKind::AmdLike);
        let a = nv.mathlib().call_f32(f, x, 1.5);
        let b = amd.mathlib().call_f32(f, x, 1.5);
        prop_assert!(
            a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
            "{f}({x}): nv={a} amd={b}"
        );
    }

    #[test]
    fn fast_intrinsics_never_produce_subnormals_nv(x in -200.0f32..200.0) {
        let nv = Device::new(DeviceKind::NvidiaLike);
        let r = nv.mathlib().call_fast_f32(MathFunc::Exp, x, 0.0);
        prop_assert!(!r.is_subnormal(), "__expf({x}) = {r:e}");
    }
}
