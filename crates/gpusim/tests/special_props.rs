//! Property tests for the from-scratch special functions: mathematical
//! identities that must hold for *both* vendor variants.

use gpusim::mathlib::special::{
    acosh_nv, asinh_nv, atanh_nv, erf_amd, erf_nv, expm1_nv, log1p_nv, rsqrt_amd, rsqrt_nv,
    tgamma_amd, tgamma_nv,
};
use proptest::prelude::*;

proptest! {
    /// erf is odd and bounded in [-1, 1].
    #[test]
    fn erf_is_odd_and_bounded(x in -8.0f64..8.0) {
        for f in [erf_nv, erf_amd] {
            let v = f(x);
            prop_assert!((-1.0..=1.0).contains(&v), "erf({x}) = {v}");
            // odd symmetry is exact (sign handling is structural)
            prop_assert_eq!(f(-x).to_bits(), (-v).to_bits());
        }
    }

    /// erf is monotone increasing.
    #[test]
    fn erf_is_monotone(x in -6.0f64..6.0, d in 0.001f64..2.0) {
        for f in [erf_nv, erf_amd] {
            prop_assert!(f(x + d) >= f(x), "erf not monotone at {x}+{d}");
        }
    }

    /// the two vendor erfs never disagree by more than a few ULP.
    #[test]
    fn erf_vendors_stay_close(x in -6.0f64..6.0) {
        let (a, b) = (erf_nv(x), erf_amd(x));
        let d = fpcore::ulp::ulp_diff_f64(a, b).unwrap();
        prop_assert!(d <= 8, "erf({x}): {a} vs {b} ({d} ulp)");
    }

    /// Γ(x+1) = x·Γ(x) (the defining recurrence), within relative 1e-11.
    #[test]
    fn tgamma_recurrence(x in 0.6f64..20.0) {
        for f in [tgamma_nv, tgamma_amd] {
            let lhs = f(x + 1.0);
            let rhs = x * f(x);
            prop_assert!(
                ((lhs - rhs) / lhs).abs() < 1e-11,
                "Γ({x}+1) = {lhs} vs x·Γ(x) = {rhs}"
            );
        }
    }

    /// Γ is positive on the positive axis.
    #[test]
    fn tgamma_positive_on_positive_axis(x in 0.01f64..30.0) {
        for f in [tgamma_nv, tgamma_amd] {
            prop_assert!(f(x) > 0.0, "Γ({x}) = {}", f(x));
        }
    }

    /// expm1(x) ≥ -1 always, and expm1 agrees with exp(x)-1 where the
    /// latter is well-conditioned.
    #[test]
    fn expm1_range_and_consistency(x in -30.0f64..30.0) {
        let v = expm1_nv(x);
        prop_assert!(v >= -1.0);
        if x.abs() > 1.0 {
            let naive = x.exp() - 1.0;
            prop_assert!(
                ((v - naive) / naive.abs().max(1e-300)).abs() < 1e-12,
                "expm1({x}) = {v} vs {naive}"
            );
        }
    }

    /// log1p inverts expm1 (both cancellation-free forms).
    #[test]
    fn log1p_inverts_expm1(x in -0.7f64..0.7) {
        let back = log1p_nv(expm1_nv(x));
        prop_assert!((back - x).abs() <= 1e-14 * x.abs().max(1e-10), "{back} vs {x}");
    }

    /// asinh/atanh are odd; acosh(cosh-like args) stays real.
    #[test]
    fn inverse_hyperbolics_symmetries(x in -1e10f64..1e10) {
        prop_assert_eq!(asinh_nv(-x).to_bits(), (-asinh_nv(x)).to_bits());
        let t = x.rem_euclid(2.0) - 1.0; // into (-1, 1)
        if t.abs() < 1.0 {
            prop_assert_eq!(atanh_nv(-t).to_bits(), (-atanh_nv(t)).to_bits());
        }
    }

    /// sinh/asinh round trip within a few ULP.
    #[test]
    fn asinh_inverts_sinh(x in -20.0f64..20.0) {
        let back = asinh_nv(x.sinh());
        prop_assert!((back - x).abs() <= 1e-12 * x.abs().max(1.0), "{back} vs {x}");
    }

    /// acosh(x) ≥ 0 and acosh(cosh(x)) = |x| approximately.
    #[test]
    fn acosh_inverts_cosh(x in 0.1f64..20.0) {
        let back = acosh_nv(x.cosh());
        prop_assert!(back >= 0.0);
        prop_assert!((back - x).abs() <= 1e-10 * x.max(1.0), "{back} vs {x}");
    }

    /// both rsqrt compositions satisfy rsqrt(x)² ≈ 1/x.
    #[test]
    fn rsqrt_squares_to_reciprocal(x in 1e-300f64..1e300) {
        for f in [rsqrt_nv, rsqrt_amd] {
            let r = f(x);
            let err = (r * r * x - 1.0).abs();
            prop_assert!(err < 1e-14, "rsqrt({x})² · x = 1 + {err}");
        }
    }
}
