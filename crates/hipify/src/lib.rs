//! # hipify — CUDA → HIP source-to-source translation
//!
//! A reimplementation of the translation AMD's HIPIFY tools perform on the
//! Varity test subset (paper §III-F): runtime-API renaming
//! ([`rules`]), kernel-launch rewriting (`k<<<g,b>>>(…)` →
//! `hipLaunchKernelGGL(k, dim3(g), dim3(b), 0, 0, …)`) and HIP header
//! injection ([`translate`]).
//!
//! The translated source is *re-parsed and recompiled* like any
//! hand-written HIP file (`progen::parser` → `gpucc` with the `hipified`
//! flag), which is how conversion-induced differences enter the paper's
//! Table VII/VIII pipeline: hipcc builds ported sources with its
//! real-world `-ffp-contract=fast` default, which the Varity-native HIP
//! tests disable.

#![deny(missing_docs)]

pub mod rules;
pub mod translate;

pub use translate::{hipify, HipifyOutput};
