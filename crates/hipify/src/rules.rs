//! The CUDA → HIP identifier mapping table.
//!
//! A (small but representative) subset of the hipify-perl substitution
//! table, covering everything the Varity-emitted host code and common
//! hand-written test harnesses use.

/// One identifier substitution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// CUDA identifier.
    pub cuda: &'static str,
    /// HIP replacement.
    pub hip: &'static str,
}

/// The substitution table, longest-match-first within shared prefixes.
pub const RULES: &[Rule] = &[
    Rule { cuda: "cudaMemcpyHostToDevice", hip: "hipMemcpyHostToDevice" },
    Rule { cuda: "cudaMemcpyDeviceToHost", hip: "hipMemcpyDeviceToHost" },
    Rule { cuda: "cudaMemcpyDeviceToDevice", hip: "hipMemcpyDeviceToDevice" },
    Rule { cuda: "cudaMemcpyAsync", hip: "hipMemcpyAsync" },
    Rule { cuda: "cudaMemcpy", hip: "hipMemcpy" },
    Rule { cuda: "cudaMallocManaged", hip: "hipMallocManaged" },
    Rule { cuda: "cudaMalloc", hip: "hipMalloc" },
    Rule { cuda: "cudaFreeHost", hip: "hipHostFree" },
    Rule { cuda: "cudaFree", hip: "hipFree" },
    Rule { cuda: "cudaDeviceSynchronize", hip: "hipDeviceSynchronize" },
    Rule { cuda: "cudaDeviceReset", hip: "hipDeviceReset" },
    Rule { cuda: "cudaGetLastError", hip: "hipGetLastError" },
    Rule { cuda: "cudaGetErrorString", hip: "hipGetErrorString" },
    Rule { cuda: "cudaGetDeviceCount", hip: "hipGetDeviceCount" },
    Rule { cuda: "cudaSetDevice", hip: "hipSetDevice" },
    Rule { cuda: "cudaStreamCreate", hip: "hipStreamCreate" },
    Rule { cuda: "cudaStreamDestroy", hip: "hipStreamDestroy" },
    Rule { cuda: "cudaStreamSynchronize", hip: "hipStreamSynchronize" },
    Rule { cuda: "cudaEventCreate", hip: "hipEventCreate" },
    Rule { cuda: "cudaEventRecord", hip: "hipEventRecord" },
    Rule { cuda: "cudaEventSynchronize", hip: "hipEventSynchronize" },
    Rule { cuda: "cudaEventElapsedTime", hip: "hipEventElapsedTime" },
    Rule { cuda: "cudaEventDestroy", hip: "hipEventDestroy" },
    Rule { cuda: "cudaError_t", hip: "hipError_t" },
    Rule { cuda: "cudaSuccess", hip: "hipSuccess" },
    Rule { cuda: "cudaStream_t", hip: "hipStream_t" },
    Rule { cuda: "cudaEvent_t", hip: "hipEvent_t" },
];

/// Look up the HIP replacement for a CUDA identifier, if any.
pub fn lookup(ident: &str) -> Option<&'static str> {
    RULES.iter().find(|r| r.cuda == ident).map(|r| r.hip)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_core_apis() {
        assert_eq!(lookup("cudaMalloc"), Some("hipMalloc"));
        assert_eq!(lookup("cudaMemcpy"), Some("hipMemcpy"));
        assert_eq!(lookup("cudaDeviceSynchronize"), Some("hipDeviceSynchronize"));
        assert_eq!(lookup("cudaMemcpyHostToDevice"), Some("hipMemcpyHostToDevice"));
    }

    #[test]
    fn lookup_rejects_non_cuda_identifiers() {
        assert_eq!(lookup("printf"), None);
        assert_eq!(lookup("compute"), None);
        assert_eq!(lookup("cuda"), None);
    }

    #[test]
    fn free_host_maps_to_host_free() {
        // the one rename that is not a prefix swap
        assert_eq!(lookup("cudaFreeHost"), Some("hipHostFree"));
    }

    #[test]
    fn every_rule_maps_cuda_prefix_to_hip_prefix() {
        for r in RULES {
            assert!(r.cuda.starts_with("cuda"), "{}", r.cuda);
            assert!(r.hip.starts_with("hip"), "{}", r.hip);
        }
    }

    #[test]
    fn no_duplicate_cuda_keys() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.cuda, b.cuda);
            }
        }
    }
}
