//! The source-text translation engine.
//!
//! Works the way hipify-perl does: identifier-boundary substitution over
//! the raw text, plus a dedicated rewrite for the triple-chevron kernel
//! launch, plus header injection. No semantic analysis — which is exactly
//! why ported sources deserve the differential retesting the paper gives
//! them.

use crate::rules::lookup;

/// Result of translating one translation unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HipifyOutput {
    /// The HIP source text.
    pub source: String,
    /// Number of identifier substitutions performed.
    pub substitutions: usize,
    /// Number of kernel launches rewritten.
    pub launches_rewritten: usize,
    /// Warnings for constructs the translator saw but could not map.
    pub warnings: Vec<String>,
}

/// Translate CUDA source text into HIP source text.
///
/// ```
/// let out = hipify::hipify("compute<<<1, 1>>>(x); cudaDeviceSynchronize();");
/// assert!(out.source.contains(
///     "hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0, x);"
/// ));
/// assert!(out.source.contains("hipDeviceSynchronize();"));
/// assert_eq!(out.launches_rewritten, 1);
/// ```
pub fn hipify(cuda_src: &str) -> HipifyOutput {
    let mut out = HipifyOutput {
        source: String::with_capacity(cuda_src.len() + 128),
        substitutions: 0,
        launches_rewritten: 0,
        warnings: Vec::new(),
    };

    // 1. kernel launches (must run before identifier substitution so the
    //    argument list is still pristine)
    let launched = rewrite_launches(cuda_src, &mut out);

    // 2. identifier substitutions at word boundaries
    let substituted = substitute_identifiers(&launched, &mut out);

    // 3. header injection at the top
    out.source = if substituted.contains("hip/hip_runtime.h") {
        substituted
    } else {
        out.substitutions += 1;
        format!("#include \"hip/hip_runtime.h\"\n{substituted}")
    };
    if obs::enabled() {
        obs::add("hipify.conversions", 1);
        obs::add("hipify.substitutions", out.substitutions as u64);
        obs::add("hipify.launches", out.launches_rewritten as u64);
    }
    out
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn substitute_identifiers(src: &str, out: &mut HipifyOutput) -> String {
    let bytes = src.as_bytes();
    let mut result = String::with_capacity(src.len());
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_char(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i]) {
                i += 1;
            }
            let word = &src[start..i];
            match lookup(word) {
                Some(hip) => {
                    out.substitutions += 1;
                    result.push_str(hip);
                }
                None => {
                    if word.starts_with("cuda") && word.len() > 4 {
                        out.warnings.push(format!("unmapped CUDA identifier `{word}`"));
                    }
                    result.push_str(word);
                }
            }
        } else {
            result.push(bytes[i] as char);
            i += 1;
        }
    }
    result
}

/// Rewrite every `name<<<cfg>>>(args)` into
/// `hipLaunchKernelGGL(name, dim3(g), dim3(b), shmem, stream, args)`.
fn rewrite_launches(src: &str, out: &mut HipifyOutput) -> String {
    let mut result = String::with_capacity(src.len());
    let mut rest = src;
    while let Some(pos) = rest.find("<<<") {
        // backtrack over whitespace to the kernel identifier
        let head = &rest[..pos];
        let name_end = head.trim_end().len();
        let trimmed = &head[..name_end];
        let name_start = trimmed
            .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map(|i| i + 1)
            .unwrap_or(0);
        let kernel = &trimmed[name_start..];
        if kernel.is_empty() {
            out.warnings.push("<<< without a kernel name".into());
            result.push_str(&rest[..pos + 3]);
            rest = &rest[pos + 3..];
            continue;
        }
        result.push_str(&head[..name_start]);

        let after_chevron = &rest[pos + 3..];
        let Some(cfg_end) = after_chevron.find(">>>") else {
            out.warnings.push(format!("unterminated launch of `{kernel}`"));
            result.push_str(&rest[name_start..]);
            rest = "";
            break;
        };
        let cfg = &after_chevron[..cfg_end];
        let cfg_parts: Vec<&str> = split_top_level(cfg);
        let (grid, block, shmem, stream) = match cfg_parts.as_slice() {
            [g, b] => (*g, *b, "0", "0"),
            [g, b, s] => (*g, *b, *s, "0"),
            [g, b, s, st] => (*g, *b, *s, *st),
            _ => {
                out.warnings
                    .push(format!("launch of `{kernel}` has {} config args", cfg_parts.len()));
                ("1", "1", "0", "0")
            }
        };

        let after_cfg = &after_chevron[cfg_end + 3..];
        let paren = after_cfg.find('(').unwrap_or(0);
        let args_and_rest = &after_cfg[paren + 1..];
        let close = matching_paren(args_and_rest);
        let args = &args_and_rest[..close];

        out.launches_rewritten += 1;
        result.push_str(&format!(
            "hipLaunchKernelGGL({kernel}, dim3({}), dim3({}), {}, {}, {})",
            grid.trim(),
            block.trim(),
            shmem.trim(),
            stream.trim(),
            args.trim()
        ));
        rest = &args_and_rest[close + 1..];
    }
    result.push_str(rest);
    result
}

/// Split on commas at parenthesis depth zero.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        parts.push(last);
    }
    parts
}

/// Index of the parenthesis closing an already-open group.
fn matching_paren(s: &str) -> usize {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    s.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewrites_simple_launch() {
        let out = hipify("compute<<<1, 1>>>(comp, var_1);");
        assert!(out
            .source
            .contains("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0, comp, var_1);"));
        assert_eq!(out.launches_rewritten, 1);
    }

    #[test]
    fn rewrites_launch_with_shared_memory_and_stream() {
        let out = hipify("k<<<grid, block, 256, s>>>(x);");
        assert!(out.source.contains("hipLaunchKernelGGL(k, dim3(grid), dim3(block), 256, s, x);"));
    }

    #[test]
    fn substitutes_runtime_api_calls() {
        let out = hipify(
            "cudaMalloc((void**)&p, n); cudaMemcpy(p, h, n, cudaMemcpyHostToDevice); cudaFree(p);",
        );
        assert!(out.source.contains("hipMalloc((void**)&p, n);"));
        assert!(out.source.contains("hipMemcpy(p, h, n, hipMemcpyHostToDevice);"));
        assert!(out.source.contains("hipFree(p);"));
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn injects_hip_header_once() {
        let out = hipify("#include <cstdio>\nint main() { return 0; }\n");
        assert!(out.source.starts_with("#include \"hip/hip_runtime.h\"\n"));
        let again = hipify(&out.source);
        assert_eq!(again.source.matches("hip/hip_runtime.h").count(), 1);
    }

    #[test]
    fn identifier_boundaries_are_respected() {
        // "mycudaMalloc" must not be rewritten
        let out = hipify("mycudaMalloc(); cudaMallocs();");
        assert!(out.source.contains("mycudaMalloc()"));
        // cudaMallocs is a different identifier: warned, not rewritten
        assert!(out.source.contains("cudaMallocs()"));
        assert_eq!(out.warnings.len(), 1);
    }

    #[test]
    fn unmapped_cuda_identifier_produces_warning() {
        let out = hipify("cudaFrobnicate();");
        assert!(out.warnings.iter().any(|w| w.contains("cudaFrobnicate")));
        assert!(out.source.contains("cudaFrobnicate();"));
    }

    #[test]
    fn nested_commas_in_launch_args_survive() {
        let out = hipify("k<<<1, 1>>>(f(a, b), g[i], c);");
        assert!(out
            .source
            .contains("hipLaunchKernelGGL(k, dim3(1), dim3(1), 0, 0, f(a, b), g[i], c);"));
    }

    #[test]
    fn multiple_launches_all_rewritten() {
        let out = hipify("a<<<1,2>>>(x); b<<<3,4>>>(y);");
        assert_eq!(out.launches_rewritten, 2);
        assert!(out.source.contains("hipLaunchKernelGGL(a, dim3(1), dim3(2)"));
        assert!(out.source.contains("hipLaunchKernelGGL(b, dim3(3), dim3(4)"));
    }

    #[test]
    fn kernel_code_is_untouched() {
        let src = "__global__ void compute(double comp) { comp += ceil(1.5955E-125); }";
        let out = hipify(src);
        assert!(out.source.contains(src), "kernel body must be byte-identical");
    }

    #[test]
    fn translating_emitted_cuda_matches_native_hip_kernel() {
        use progen::emit::{emit, Dialect};
        use progen::gen::generate_program;
        use progen::grammar::GenConfig;
        use progen::Precision;

        let cfg = GenConfig::varity_default(Precision::F64);
        for i in 0..20 {
            let p = generate_program(&cfg, 41, i);
            let cuda = emit(&p, Dialect::Cuda);
            let out = hipify(&cuda);
            assert!(out.warnings.is_empty(), "program {i}: {:?}", out.warnings);
            // the hipified text parses back to the same AST
            let parsed = progen::parser::parse_kernel(&out.source, &p.id)
                .unwrap_or_else(|e| panic!("program {i}: {e}\n{}", out.source));
            assert_eq!(parsed, p, "program {i}");
            // and the launch matches the native HIP emission style
            let native_hip = emit(&p, Dialect::Hip);
            assert!(native_hip.contains("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0,"));
            assert!(out.source.contains("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0,"));
        }
    }
}
