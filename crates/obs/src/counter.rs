//! Sharded lock-free counters.
//!
//! A [`Counter`] is a small array of cache-padded atomics; each thread
//! increments its own shard (chosen by a per-thread slot number), so
//! parallel campaigns never bounce a cache line between cores. Reading
//! sums the shards — reads are rare (snapshot/progress), writes are hot.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Monotonic per-thread slot used to pick a shard.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// Number of shards per counter: the next power of two at or above the
/// available parallelism, clamped to `[2, 64]`.
fn shard_count() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8);
    cores.next_power_of_two().clamp(2, 64)
}

/// A monotonically increasing, thread-sharded counter.
pub struct Counter {
    shards: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        let n = shard_count();
        let shards: Vec<CachePadded<AtomicU64>> =
            (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect();
        Counter { shards: shards.into_boxed_slice(), mask: n - 1 }
    }

    /// Add `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        let slot = THREAD_SLOT.with(|s| *s) & self.mask;
        self.shards[slot].fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_counts() {
        let c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
    }

    #[test]
    fn shard_count_is_power_of_two_in_range() {
        let n = shard_count();
        assert!(n.is_power_of_two());
        assert!((2..=64).contains(&n));
    }

    #[test]
    fn threads_do_not_lose_increments() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), 80_000);
    }
}
