//! Log2-bucketed histograms for latency and size distributions.
//!
//! Values are binned by bit length: bucket 0 holds the value 0, bucket
//! `b >= 1` holds `[2^(b-1), 2^b)`. 65 buckets cover the full `u64`
//! range. Each bucket is an atomic, so concurrent recording is exact
//! (never lossy), and the exact sum/min/max are tracked alongside so
//! means are not bucket-quantised.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::HistSnapshot;

/// Bucket count: one per possible bit length of a `u64`, plus zero.
pub const BUCKETS: usize = 65;

/// Bucket index for a value (its bit length).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, for quantile estimates.
pub fn bucket_high(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// A concurrent log2 histogram with exact sum, min, and max.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }

    /// Fold a frozen snapshot into this live histogram: bucket counts
    /// add, sum adds exactly, min/max extend. A later [`snapshot`]
    /// (`Histogram::snapshot`) is then identical to one where the
    /// absorbed observations had been recorded live.
    pub fn absorb(&self, s: &HistSnapshot) {
        if s.count == 0 {
            return;
        }
        for (b, &n) in s.buckets.iter().enumerate() {
            if n > 0 {
                self.buckets[b].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        self.min.fetch_min(s.min, Ordering::Relaxed);
        self.max.fetch_max(s.max, Ordering::Relaxed);
    }

    /// Freeze the current state into a serializable snapshot. Trailing
    /// empty buckets are trimmed so snapshots stay small on disk.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let count = buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        let min = self.min.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_bounds_cover_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            assert!(v <= bucket_high(bucket_of(v)));
        }
    }

    #[test]
    fn snapshot_tracks_exact_stats() {
        let h = Histogram::new();
        for v in [5u64, 10, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 115);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 115.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_snapshot_is_clean() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
        assert_eq!(s.mean(), 0.0);
    }
}
