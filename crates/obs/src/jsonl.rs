//! Structured JSONL event/metrics log.
//!
//! One JSON object per line. Every line carries `"ev"` (the event kind)
//! and `"ts_ms"` (milliseconds since the Unix epoch). Metric dumps are
//! one line per metric so the log stays greppable and any prefix of the
//! file is itself valid JSONL:
//!
//! ```text
//! {"ev":"campaign_start","ts_ms":...,"programs":50,...}
//! {"ev":"phase","ts_ms":...,"name":"run.nvcc","ns":12345}
//! {"ev":"counter","ts_ms":...,"name":"campaign.runs_done","value":3500}
//! {"ev":"hist","ts_ms":...,"name":"span.campaign.analyze","count":1,...}
//! {"ev":"campaign_end","ts_ms":...}
//! ```

use parking_lot::Mutex;
use serde_json::{json, Map, Value};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::snapshot::MetricsSnapshot;

/// Milliseconds since the Unix epoch.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// A line-buffered, thread-safe JSONL writer.
pub struct JsonlWriter {
    inner: Mutex<BufWriter<File>>,
}

impl JsonlWriter {
    /// Create (truncating) the log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlWriter> {
        let file = File::create(path)?;
        Ok(JsonlWriter { inner: Mutex::new(BufWriter::new(file)) })
    }

    /// Append one event line. `fields` must be a JSON object; its keys
    /// are merged after the standard `ev` / `ts_ms` pair.
    pub fn event(&self, kind: &str, fields: Value) -> std::io::Result<()> {
        let mut obj = Map::new();
        obj.insert("ev".into(), Value::String(kind.to_string()));
        obj.insert("ts_ms".into(), json!(now_ms()));
        if let Value::Object(extra) = fields {
            for (k, v) in extra {
                obj.insert(k, v);
            }
        }
        let mut w = self.inner.lock();
        serde_json::to_writer(&mut *w, &Value::Object(obj))?;
        w.write_all(b"\n")?;
        w.flush()
    }

    /// Dump a snapshot: one `counter` line per counter, one `hist` line
    /// per histogram.
    pub fn write_snapshot(&self, snap: &MetricsSnapshot) -> std::io::Result<()> {
        for (name, value) in &snap.counters {
            self.event("counter", json!({ "name": name, "value": value }))?;
        }
        for (name, h) in &snap.hists {
            self.event(
                "hist",
                json!({
                    "name": name,
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "buckets": h.buckets,
                }),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_line_parses_and_carries_ev() {
        let dir = std::env::temp_dir().join("obs-jsonl-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log-{}.jsonl", std::process::id()));
        let w = JsonlWriter::create(&path).unwrap();
        w.event("start", json!({ "programs": 5 })).unwrap();
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("c".into(), 7);
        let h = crate::Histogram::new();
        h.record(12);
        snap.hists.insert("h".into(), h.snapshot());
        w.write_snapshot(&snap).unwrap();
        w.event("end", json!({})).unwrap();
        drop(w);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("ev").is_some(), "line missing ev: {line}");
            assert!(v.get("ts_ms").is_some(), "line missing ts_ms: {line}");
        }
        let counter: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(counter["name"], "c");
        assert_eq!(counter["value"], 7);
        std::fs::remove_file(&path).ok();
    }
}
