//! Telemetry for the differential-testing pipeline.
//!
//! Lock-free counters, log2-bucketed latency histograms, and scoped span
//! timers behind a process-global registry. The design goal is that a
//! rayon-parallel campaign can hammer the same counter from every worker
//! thread without contention: counters are striped across cache-padded
//! shards indexed by a per-thread slot, and reads sum the shards.
//!
//! Everything funnels into a [`MetricsSnapshot`] — a plain serde value
//! that rides inside `CampaignMeta` so between-platform runs carry their
//! telemetry — and optionally into a JSONL event log via [`JsonlWriter`].
//!
//! Instrumentation sites call the free functions in this module
//! ([`add`], [`record`], [`span`]); they are no-ops (beyond one relaxed
//! atomic load) when telemetry is disabled with [`set_enabled`], which
//! is what the overhead guard in `crates/bench` measures against.

#![deny(missing_docs)]

pub mod counter;
pub mod hist;
pub mod jsonl;
pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use counter::Counter;
pub use hist::Histogram;
pub use jsonl::JsonlWriter;
pub use registry::{global, Registry};
pub use snapshot::{HistSnapshot, MetricsSnapshot};
pub use span::Span;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Process-wide on/off switch. Telemetry defaults to enabled; the bench
/// overhead guard and throughput-sensitive callers may turn it off.
static ENABLED: AtomicBool = AtomicBool::new(true);

thread_local! {
    /// Per-thread capture override installed by [`with_capture`]. While
    /// set, `add`/`record` route to this registry instead of the global
    /// one, so a work unit's metric deltas can be frozen individually.
    static CAPTURE: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
}

/// Whether telemetry is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable telemetry recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Run `f` against the thread's current target registry: the capture
/// registry installed by [`with_capture`] when one is active on this
/// thread, else the process-global registry.
#[inline]
fn with_target<R>(f: impl FnOnce(&Registry) -> R) -> R {
    CAPTURE.with(|c| match &*c.borrow() {
        Some(r) => f(r),
        None => f(global()),
    })
}

/// Bump the named global counter by `n` (no-op when disabled).
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        with_target(|r| r.counter(name).add(n));
    }
}

/// Record one observation in the named global histogram (no-op when
/// disabled).
#[inline]
pub fn record(name: &str, value: u64) {
    if enabled() {
        with_target(|r| r.hist(name).record(value));
    }
}

/// Run `f` with a fresh capture registry installed on this thread, then
/// fold the captured metrics into the global registry and return them
/// alongside `f`'s result.
///
/// Every `obs::add` / `obs::record` / `obs::span` issued on this thread
/// while `f` runs lands only in the capture registry; the fold at the
/// end keeps global totals identical to an uncaptured run. The fault-
/// tolerant campaign runner uses this to stamp each work unit's exact
/// metric deltas into its checkpoint journal record, so a resumed
/// campaign can replay the telemetry of work it skips.
///
/// Captures nest per thread (the innermost wins) and are restored even
/// if `f` panics through a `catch_unwind` boundary inside it.
pub fn with_capture<R>(f: impl FnOnce() -> R) -> (R, MetricsSnapshot) {
    let reg = Arc::new(Registry::new());

    struct Restore(Option<Arc<Registry>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CAPTURE.with(|c| *c.borrow_mut() = prev);
        }
    }

    let prev = CAPTURE.with(|c| c.borrow_mut().replace(Arc::clone(&reg)));
    let restore = Restore(prev.clone());
    let out = f();
    drop(restore);

    let snap = reg.snapshot();
    match &prev {
        Some(outer) => outer.merge_snapshot(&snap),
        None => global().merge_snapshot(&snap),
    }
    (out, snap)
}

/// Start a scoped timer; on drop it records elapsed nanoseconds into the
/// histogram `span.{name}`. Names are `&'static str` (the histogram key
/// is interned once per name) so span open/close allocates nothing on
/// the hot path. While a trace is active ([`trace::start`]) the span
/// also records a [`trace::TraceEvent`]; attach attributes with
/// [`Span::attr`].
pub fn span(name: &'static str) -> Span {
    Span::start(name)
}

/// Snapshot every metric in the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Drop all metrics from the global registry (used at campaign start and
/// in tests so runs don't bleed into each other).
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod capture_tests {
    #[test]
    fn capture_isolates_and_folds_back() {
        let before = crate::global().counter("obs.test.capture.c").value();
        let ((), snap) = crate::with_capture(|| {
            crate::add("obs.test.capture.c", 5);
            crate::record("obs.test.capture.h", 9);
            let _s = crate::span("obs.test.capture");
        });
        assert_eq!(snap.counter("obs.test.capture.c"), 5);
        assert_eq!(snap.hists["obs.test.capture.h"].count, 1);
        assert_eq!(snap.hists["span.obs.test.capture"].count, 1);
        assert_eq!(crate::global().counter("obs.test.capture.c").value(), before + 5);
    }

    #[test]
    fn capture_nests_and_folds_into_outer() {
        let ((), outer) = crate::with_capture(|| {
            crate::add("obs.test.nest", 1);
            let ((), inner) = crate::with_capture(|| crate::add("obs.test.nest", 2));
            assert_eq!(inner.counter("obs.test.nest"), 2);
        });
        assert_eq!(outer.counter("obs.test.nest"), 3);
    }

    #[test]
    fn capture_restores_routing_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            crate::with_capture(|| panic!("boom"));
        });
        assert!(caught.is_err());
        let before = crate::global().counter("obs.test.capture.after").value();
        crate::add("obs.test.capture.after", 1);
        assert_eq!(crate::global().counter("obs.test.capture.after").value(), before + 1);
    }

    #[test]
    fn merge_snapshot_restores_exact_totals() {
        let src = crate::Registry::new();
        src.counter("c").add(7);
        src.counter("zero"); // registered, never bumped
        src.hist("h").record(3);
        src.hist("h").record(300);
        let snap = src.snapshot();

        let dst = crate::Registry::new();
        dst.counter("c").add(1);
        dst.merge_snapshot(&snap);
        let out = dst.snapshot();
        assert_eq!(out.counter("c"), 8);
        assert!(out.counters.contains_key("zero"));
        assert_eq!(out.hists["h"].count, 2);
        assert_eq!(out.hists["h"].sum, 303);
        assert_eq!(out.hists["h"].min, 3);
        assert_eq!(out.hists["h"].max, 300);
    }
}
