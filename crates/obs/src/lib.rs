//! Telemetry for the differential-testing pipeline.
//!
//! Lock-free counters, log2-bucketed latency histograms, and scoped span
//! timers behind a process-global registry. The design goal is that a
//! rayon-parallel campaign can hammer the same counter from every worker
//! thread without contention: counters are striped across cache-padded
//! shards indexed by a per-thread slot, and reads sum the shards.
//!
//! Everything funnels into a [`MetricsSnapshot`] — a plain serde value
//! that rides inside `CampaignMeta` so between-platform runs carry their
//! telemetry — and optionally into a JSONL event log via [`JsonlWriter`].
//!
//! Instrumentation sites call the free functions in this module
//! ([`add`], [`record`], [`span`]); they are no-ops (beyond one relaxed
//! atomic load) when telemetry is disabled with [`set_enabled`], which
//! is what the overhead guard in `crates/bench` measures against.

#![deny(missing_docs)]

pub mod counter;
pub mod hist;
pub mod jsonl;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use counter::Counter;
pub use hist::Histogram;
pub use jsonl::JsonlWriter;
pub use registry::{global, Registry};
pub use snapshot::{HistSnapshot, MetricsSnapshot};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide on/off switch. Telemetry defaults to enabled; the bench
/// overhead guard and throughput-sensitive callers may turn it off.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable telemetry recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Bump the named global counter by `n` (no-op when disabled).
#[inline]
pub fn add(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Record one observation in the named global histogram (no-op when
/// disabled).
#[inline]
pub fn record(name: &str, value: u64) {
    if enabled() {
        global().hist(name).record(value);
    }
}

/// Start a scoped timer; on drop it records elapsed nanoseconds into the
/// histogram `span.{name}`.
pub fn span(name: impl Into<String>) -> Span {
    Span::start(name)
}

/// Snapshot every metric in the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Drop all metrics from the global registry (used at campaign start and
/// in tests so runs don't bleed into each other).
pub fn reset() {
    global().reset();
}
