//! Prometheus text exposition of a [`MetricsSnapshot`].
//!
//! Metric names are sanitized dot-to-underscore (`farm.worker_deaths` →
//! `farm_worker_deaths`), counters render as `counter` series, and the
//! log2 histograms render as native Prometheus `histogram` series whose
//! cumulative `le` bucket bounds are the log2 buckets' inclusive upper
//! bounds — exactly what the farm's `/metrics` route serves.

use std::fmt::Write as _;

use crate::hist::bucket_high;
use crate::snapshot::{HistSnapshot, MetricsSnapshot};

/// Sanitize a metric name into the Prometheus charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other byte becomes `_`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format
/// (version 0.0.4). Deterministic: series appear in the snapshot's
/// (sorted) name order, so identical snapshots render byte-identically
/// regardless of how many shards merged into them or in what order.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.hists {
        render_hist(&mut out, &sanitize(name), h);
    }
    out
}

fn render_hist(out: &mut String, name: &str, h: &HistSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (b, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        // Suppress all-zero leading buckets to keep the exposition
        // small; cumulative counts stay exact from the first hit on.
        if cumulative == 0 {
            continue;
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", bucket_high(b));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("farm.worker_deaths"), "farm_worker_deaths");
        assert_eq!(sanitize("campaign.disc.Num"), "campaign_disc_Num");
        assert_eq!(sanitize("span.gpucc.compile"), "span_gpucc_compile");
        assert_eq!(sanitize("0weird name"), "_0weird_name");
    }

    #[test]
    fn render_emits_counter_and_histogram_series() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("farm.spawns".into(), 4);
        let h = crate::Histogram::new();
        h.record(3);
        h.record(300);
        snap.hists.insert("campaign.unit_ns".into(), h.snapshot());

        let text = render(&snap);
        assert!(text.contains("# TYPE farm_spawns counter\nfarm_spawns 4\n"), "{text}");
        assert!(text.contains("# TYPE campaign_unit_ns histogram"), "{text}");
        assert!(text.contains("campaign_unit_ns_sum 303"), "{text}");
        assert!(text.contains("campaign_unit_ns_count 2"), "{text}");
        assert!(text.contains("campaign_unit_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        // value 3 has bit length 2 → bucket upper bound 3; cumulative 1
        assert!(text.contains("campaign_unit_ns_bucket{le=\"3\"} 1"), "{text}");
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_end_at_count() {
        let h = crate::Histogram::new();
        for v in [1u64, 2, 2, 9, 1000, 65_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let text = {
            let mut s = String::new();
            render_hist(&mut s, "x", &snap);
            s
        };
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("x_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotonic cumulative bucket: {text}");
            last = v;
        }
        assert_eq!(last, snap.count);
    }

    #[test]
    fn render_is_deterministic() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("b".into(), 1);
        snap.counters.insert("a".into(), 2);
        assert_eq!(render(&snap), render(&snap.clone()));
    }
}
