//! Name → metric registry with a process-global instance.
//!
//! Lookup is read-lock fast path (the common case once a metric exists),
//! falling back to a write lock only on first registration. Callers that
//! sit on a hot loop should hold the returned `Arc` instead of paying
//! the map lookup per event.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use crate::counter::Counter;
use crate::hist::Histogram;
use crate::snapshot::MetricsSnapshot;

/// A set of named counters and histograms.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    hists: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.counters.write();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// The histogram named `name`, creating it on first use.
    pub fn hist(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.hists.read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.hists.write();
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Freeze every metric. Zero-valued counters registered but never
    /// bumped are included — a zero is still information.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, c) in self.counters.read().iter() {
            snap.counters.insert(name.clone(), c.value());
        }
        for (name, h) in self.hists.read().iter() {
            snap.hists.insert(name.clone(), h.snapshot());
        }
        snap
    }

    /// Fold a frozen snapshot into this registry's live metrics:
    /// counters add their totals, histograms absorb bucket counts and
    /// exact sum/min/max. Zero-valued counters are still registered so a
    /// later [`Registry::snapshot`] reports them, mirroring the live
    /// path. Used to restore checkpointed telemetry on campaign resume.
    pub fn merge_snapshot(&self, snap: &MetricsSnapshot) {
        for (name, &v) in &snap.counters {
            self.counter(name).add(v);
        }
        for (name, h) in &snap.hists {
            self.hist(name).absorb(h);
        }
    }

    /// Drop every metric.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.hists.write().clear();
    }
}

/// The process-global registry used by `obs::add` / `obs::record` /
/// `obs::span`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_counter() {
        let r = Registry::new();
        r.counter("a").add(1);
        r.counter("a").add(2);
        assert_eq!(r.counter("a").value(), 3);
    }

    #[test]
    fn snapshot_sees_all_metrics() {
        let r = Registry::new();
        r.counter("c1").add(5);
        r.hist("h1").record(9);
        let s = r.snapshot();
        assert_eq!(s.counter("c1"), 5);
        assert_eq!(s.hists["h1"].count, 1);
    }

    #[test]
    fn reset_clears() {
        let r = Registry::new();
        r.counter("c").add(1);
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
