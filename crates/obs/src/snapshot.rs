//! Frozen, serializable views of the metric registry.
//!
//! A [`MetricsSnapshot`] is what rides inside `CampaignMeta` through the
//! between-platform save/load/merge protocol, and what the JSONL writer
//! and the `analyze --profile` table render from.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::hist::bucket_high;

/// Frozen state of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Log2 bucket counts, trailing zeros trimmed (bucket `b` holds
    /// values of bit length `b`; bucket 0 holds the value 0).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the
    /// bucket containing the `q`-th observation (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one (exact for count/sum,
    /// bucket-wise for the distribution).
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
    }
}

/// Every counter and histogram in a registry, frozen at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter name → total.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → frozen distribution.
    pub hists: BTreeMap<String, HistSnapshot>,
}

impl MetricsSnapshot {
    /// True when no metric was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold another snapshot into this one: counters add, histograms
    /// merge bucket-wise. Used when merging sharded / per-platform
    /// campaign halves.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// The sub-snapshot whose metric names start with `prefix`
    /// (`filter_prefix("farm.")` keeps `farm.respawns` but not
    /// `campaign.runs_done`). The farm status endpoint uses this to
    /// embed one subsystem's counters without dragging the whole
    /// registry into every poll response.
    pub fn filter_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(vals: &[u64]) -> HistSnapshot {
        let h = crate::Histogram::new();
        for &v in vals {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("x".into(), 2);
        a.hists.insert("h".into(), hist(&[1, 100]));
        let mut b = MetricsSnapshot::default();
        b.counters.insert("x".into(), 3);
        b.counters.insert("y".into(), 1);
        b.hists.insert("h".into(), hist(&[50]));
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        let h = &a.hists["h"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 151);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = MetricsSnapshot::default();
        let mut b = MetricsSnapshot::default();
        b.hists.insert("h".into(), hist(&[7]));
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_brackets_the_data() {
        let h = hist(&[1, 2, 3, 4, 1000]);
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(0.5) <= 7); // median 3 lives in bucket [2,3]
        assert_eq!(h.quantile(1.0), 1000); // clamped to exact max
    }

    #[test]
    fn filter_prefix_keeps_only_matching_metrics() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("farm.respawns".into(), 3);
        s.counters.insert("farm.lease_expiries".into(), 1);
        s.counters.insert("campaign.runs_done".into(), 99);
        s.hists.insert("farm.drain_ms".into(), hist(&[5]));
        s.hists.insert("span.campaign.generate".into(), hist(&[7]));
        let f = s.filter_prefix("farm.");
        assert_eq!(f.counters.len(), 2);
        assert_eq!(f.counter("farm.respawns"), 3);
        assert_eq!(f.counter("campaign.runs_done"), 0);
        assert_eq!(f.hists.len(), 1);
        assert!(f.hists.contains_key("farm.drain_ms"));
        // empty prefix = identity
        assert_eq!(s.filter_prefix(""), s);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("a.b".into(), 9);
        s.hists.insert("span.x".into(), hist(&[3, 3, 3]));
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
