//! Scoped wall-clock timers.
//!
//! A [`Span`] records elapsed nanoseconds into the histogram
//! `span.{name}` when it is dropped (or explicitly finished), so phase
//! timing reads as plain RAII at the instrumentation site:
//!
//! ```
//! {
//!     let _span = obs::span("demo.phase");
//!     // ... work ...
//! } // recorded here
//! assert_eq!(obs::snapshot().hists["span.demo.phase"].count, 1);
//! ```
//!
//! Names are `&'static str` and the `span.{name}` histogram key is
//! interned once per distinct name, so opening and closing a span on
//! the hot path allocates nothing. When a trace is being collected
//! ([`crate::trace::start`]) each span additionally records a
//! [`crate::trace::TraceEvent`] with parent/child causality and any
//! attributes attached via [`Span::attr`]; with tracing off, attributes
//! are discarded without ever being materialized.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Instant;

use crate::trace::{self, AttrValue, SpanCtx};

/// The interned `span.{name}` histogram key for a span name. Names form
/// a small fixed vocabulary (instrumentation sites are code, not data),
/// so each distinct name leaks one small string, once.
fn span_key(name: &'static str) -> &'static str {
    static KEYS: OnceLock<RwLock<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    let keys = KEYS.get_or_init(Default::default);
    if let Some(k) = keys.read().get(name) {
        return k;
    }
    let mut map = keys.write();
    map.entry(name).or_insert_with(|| Box::leak(format!("span.{name}").into_boxed_str()))
}

/// A running timer tied to a named span histogram.
pub struct Span {
    name: &'static str,
    start: Instant,
    done: bool,
    /// Trace context; present only while a trace is being collected.
    trace: Option<Box<SpanCtx>>,
}

impl Span {
    /// Start timing `name` now.
    pub fn start(name: &'static str) -> Span {
        // Open the trace context before the timer so the span's own
        // bookkeeping is not charged to its duration.
        let trace = trace::begin();
        Span { name, start: Instant::now(), done: false, trace }
    }

    /// Attach a structured attribute (program id, toolchain, opt level,
    /// pass name) to this span's trace event. A no-op — the value is
    /// never converted — unless a trace is being collected.
    pub fn attr(mut self, key: &'static str, value: impl Into<AttrValue>) -> Span {
        if let Some(ctx) = &mut self.trace {
            ctx.args.push((key, value.into()));
        }
        self
    }

    /// Elapsed nanoseconds so far, without stopping the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.commit(ns);
        ns
    }

    fn commit(&mut self, ns: u64) {
        if !self.done {
            self.done = true;
            // Routed through `crate::record` (not the global registry
            // directly) so spans land in an active `with_capture` scope.
            crate::record(span_key(self.name), ns);
            if let Some(ctx) = self.trace.take() {
                trace::end(*ctx, self.name, self.start, ns);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        self.commit(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let r = crate::global();
        let before = r.hist("span.obs.test.drop").count();
        {
            let _s = Span::start("obs.test.drop");
        }
        assert_eq!(r.hist("span.obs.test.drop").count(), before + 1);
    }

    #[test]
    fn finish_records_once_and_returns_ns() {
        let r = crate::global();
        let before = r.hist("span.obs.test.finish").count();
        let s = Span::start("obs.test.finish");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = s.finish();
        assert!(ns >= 1_000_000, "slept 1ms but span saw {ns}ns");
        assert_eq!(r.hist("span.obs.test.finish").count(), before + 1);
    }

    #[test]
    fn span_key_interns_one_static_string_per_name() {
        let a = span_key("obs.test.intern");
        let b = span_key("obs.test.intern");
        assert_eq!(a, "span.obs.test.intern");
        assert!(std::ptr::eq(a, b), "same name must return the same interned key");
    }

    #[test]
    fn attrs_without_tracing_are_free_and_harmless() {
        let r = crate::global();
        let before = r.hist("span.obs.test.attroff").count();
        {
            let _s = Span::start("obs.test.attroff").attr("k", 1u64).attr("s", "v");
        }
        assert_eq!(r.hist("span.obs.test.attroff").count(), before + 1);
    }
}
