//! Scoped wall-clock timers.
//!
//! A [`Span`] records elapsed nanoseconds into the histogram
//! `span.{name}` when it is dropped (or explicitly finished), so phase
//! timing reads as plain RAII at the instrumentation site:
//!
//! ```
//! {
//!     let _span = obs::span("demo.phase");
//!     // ... work ...
//! } // recorded here
//! assert_eq!(obs::snapshot().hists["span.demo.phase"].count, 1);
//! ```

use std::time::Instant;

/// A running timer tied to a named span histogram.
pub struct Span {
    name: String,
    start: Instant,
    done: bool,
}

impl Span {
    /// Start timing `name` now.
    pub fn start(name: impl Into<String>) -> Span {
        Span { name: name.into(), start: Instant::now(), done: false }
    }

    /// Elapsed nanoseconds so far, without stopping the span.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Stop now, record, and return the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.commit(ns);
        ns
    }

    fn commit(&mut self, ns: u64) {
        if !self.done {
            self.done = true;
            // Routed through `crate::record` (not the global registry
            // directly) so spans land in an active `with_capture` scope.
            crate::record(&format!("span.{}", self.name), ns);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        self.commit(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let r = crate::global();
        let before = r.hist("span.obs.test.drop").count();
        {
            let _s = Span::start("obs.test.drop");
        }
        assert_eq!(r.hist("span.obs.test.drop").count(), before + 1);
    }

    #[test]
    fn finish_records_once_and_returns_ns() {
        let r = crate::global();
        let before = r.hist("span.obs.test.finish").count();
        let s = Span::start("obs.test.finish");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = s.finish();
        assert!(ns >= 1_000_000, "slept 1ms but span saw {ns}ns");
        assert_eq!(r.hist("span.obs.test.finish").count(), before + 1);
    }
}
