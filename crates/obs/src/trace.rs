//! Hierarchical trace spans with parent/child causality and structured
//! attributes, layered on the span timers of [`crate::span`].
//!
//! Tracing is an *opt-in* second consumer of the spans the pipeline
//! already opens: when a trace is active ([`start`]), every
//! [`crate::Span`] additionally records a [`TraceEvent`] carrying its
//! span id, its parent's id (the innermost span open on the same thread
//! when it started), and any attributes attached with
//! [`crate::Span::attr`]. Instrumentation sites that already measure
//! their own timing (the compiler pass loop) can [`emit`] events with
//! explicit timestamps, and long-lived state machines (the farm
//! supervisor) can drop zero-duration [`instant`] markers.
//!
//! When no trace is active the cost at a span site is one relaxed
//! atomic load and attribute values are never materialized, so the
//! always-on telemetry path (counters + histograms) is unchanged — the
//! overhead guard in `crates/bench` measures exactly that path.
//!
//! [`chrome_json`] serializes a collected trace in the Chrome
//! trace-event format (the `{"traceEvents": [...]}` flavor), loadable
//! in Perfetto / `chrome://tracing`; every event carries its `span_id`
//! and `parent_id` in `args` so the causality survives tools that
//! re-sort by timestamp.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A structured attribute value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Text (program ids, pass names, toolchain names).
    Str(String),
    /// Unsigned integer (indices, counts, rewrites).
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Flag.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> AttrValue {
        AttrValue::F64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn to_json(&self) -> serde_json::Value {
        match self {
            AttrValue::Str(s) => serde_json::Value::String(s.clone()),
            AttrValue::U64(v) => serde_json::json!(v),
            AttrValue::F64(v) => serde_json::json!(v),
            AttrValue::Bool(v) => serde_json::json!(v),
        }
    }
}

/// Event flavor: a measured duration or a point-in-time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span with a start and a duration (Chrome phase `X`).
    Span,
    /// A zero-duration marker (Chrome phase `i`).
    Instant,
}

/// One collected trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Process-unique span id (ids are never reused within a process).
    pub id: u64,
    /// Id of the innermost span open on the same thread at start time.
    pub parent: Option<u64>,
    /// Span name (same name the `span.{name}` histogram records under).
    pub name: &'static str,
    /// Duration span or instant marker.
    pub kind: TraceKind,
    /// Start offset in nanoseconds from the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Small per-thread ordinal (not the OS tid).
    pub tid: u64,
    /// Structured attributes, in attachment order.
    pub args: Vec<(&'static str, AttrValue)>,
}

/// Live trace context carried by a [`crate::Span`] while a trace is
/// active. Created by [`begin`], consumed by [`end`].
#[derive(Debug)]
pub struct SpanCtx {
    id: u64,
    parent: Option<u64>,
    tid: u64,
    pub(crate) args: Vec<(&'static str, AttrValue)>,
}

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Ids of the traced spans currently open on this thread, innermost
    /// last — the parent chain for new spans and emitted events.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn sink() -> &'static Mutex<Vec<TraceEvent>> {
    static SINK: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process trace epoch: all event timestamps are offsets from this
/// instant. Initialized on first use; [`chrome_json`] re-normalizes to
/// the earliest event, so only differences matter.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn offset_ns(t: Instant) -> u64 {
    t.checked_duration_since(epoch())
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

fn tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Whether a trace is currently being collected.
#[inline]
pub fn active() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Begin collecting a trace: clears any previously collected events and
/// turns the span/event hooks on. Tracing is process-global, like the
/// registry — one trace at a time.
pub fn start() {
    epoch();
    sink().lock().clear();
    TRACING.store(true, Ordering::Relaxed);
}

/// Stop collecting and drain the trace, sorted by start time. Spans
/// still open keep their context and are dropped silently (their
/// histogram recording is unaffected).
pub fn stop() -> Vec<TraceEvent> {
    TRACING.store(false, Ordering::Relaxed);
    let mut events = std::mem::take(&mut *sink().lock());
    events.sort_by_key(|e| (e.start_ns, e.id));
    events
}

/// Open a trace context for a span starting now on this thread, pushing
/// it onto the thread's parent stack. Returns `None` when no trace is
/// active — the only cost on the common path.
pub(crate) fn begin() -> Option<Box<SpanCtx>> {
    if !active() {
        return None;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    Some(Box::new(SpanCtx { id, parent, tid: tid(), args: Vec::new() }))
}

/// Close a trace context: pop it from the thread's parent stack and
/// record the completed event (if the trace is still active).
pub(crate) fn end(ctx: SpanCtx, name: &'static str, start: Instant, dur_ns: u64) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        // Spans normally close LIFO; tolerate out-of-order drops.
        match s.last() {
            Some(&top) if top == ctx.id => {
                s.pop();
            }
            _ => s.retain(|&id| id != ctx.id),
        }
    });
    if active() {
        sink().lock().push(TraceEvent {
            id: ctx.id,
            parent: ctx.parent,
            name,
            kind: TraceKind::Span,
            start_ns: offset_ns(start),
            dur_ns,
            tid: ctx.tid,
            args: ctx.args,
        });
    }
}

/// Record a completed event with explicit timing, parented to the
/// innermost span open on this thread. For instrumentation sites that
/// already measure their own durations (the compiler's pass loop) and
/// must not pay a second timer.
pub fn emit(name: &'static str, start: Instant, dur_ns: u64, args: Vec<(&'static str, AttrValue)>) {
    if !active() {
        return;
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    sink().lock().push(TraceEvent {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        name,
        kind: TraceKind::Span,
        start_ns: offset_ns(start),
        dur_ns,
        tid: tid(),
        args,
    });
}

/// Record a zero-duration marker at the current instant (lifecycle
/// edges: worker spawned, shard poisoned, lease expired).
pub fn instant(name: &'static str, args: Vec<(&'static str, AttrValue)>) {
    if !active() {
        return;
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    sink().lock().push(TraceEvent {
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent,
        name,
        kind: TraceKind::Instant,
        start_ns: offset_ns(Instant::now()),
        dur_ns: 0,
        tid: tid(),
        args,
    });
}

/// Serialize events as Chrome trace-event JSON (the object flavor with
/// a `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
/// Timestamps are microseconds relative to the earliest event; every
/// event's `args` carries `span_id` (and `parent_id` when parented) so
/// the span tree survives re-sorting.
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let t0 = events.iter().map(|e| e.start_ns).min().unwrap_or(0);
    let rows: Vec<serde_json::Value> = events
        .iter()
        .map(|e| {
            let mut args = serde_json::Map::new();
            args.insert("span_id".into(), serde_json::json!(e.id));
            if let Some(p) = e.parent {
                args.insert("parent_id".into(), serde_json::json!(p));
            }
            for (k, v) in &e.args {
                args.insert((*k).into(), v.to_json());
            }
            let cat = e.name.split('.').next().unwrap_or(e.name);
            let mut row = serde_json::json!({
                "name": e.name,
                "cat": cat,
                "ph": match e.kind { TraceKind::Span => "X", TraceKind::Instant => "i" },
                "ts": (e.start_ns - t0) as f64 / 1e3,
                "pid": 1,
                "tid": e.tid,
                "args": serde_json::Value::Object(args),
            });
            match e.kind {
                TraceKind::Span => {
                    row["dur"] = serde_json::json!(e.dur_ns as f64 / 1e3);
                }
                TraceKind::Instant => {
                    row["s"] = serde_json::json!("t");
                }
            }
            row
        })
        .collect();
    serde_json::json!({ "traceEvents": rows, "displayTimeUnit": "ms" }).to_string()
}

/// Write [`chrome_json`] to a file.
pub fn write_chrome(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    std::fs::write(path, chrome_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing is process-global; tests that toggle it serialize here.
    pub(crate) fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn spans_record_parent_child_causality_and_attrs() {
        let _gate = lock();
        start();
        {
            let _outer = crate::span("obs.trace.test.outer").attr("program", "p_1");
            let _inner = crate::span("obs.trace.test.inner").attr("level", "O3");
        }
        let events = stop();
        let outer = events.iter().find(|e| e.name == "obs.trace.test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "obs.trace.test.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.args, vec![("program", AttrValue::Str("p_1".into()))]);
        assert_eq!(inner.args, vec![("level", AttrValue::Str("O3".into()))]);
        assert!(inner.start_ns >= outer.start_ns);
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn emit_and_instant_parent_under_the_open_span() {
        let _gate = lock();
        start();
        {
            let _outer = crate::span("obs.trace.test.emitparent");
            emit("obs.trace.test.pass", Instant::now(), 42, vec![("rewrites", 3u64.into())]);
            instant("obs.trace.test.marker", vec![]);
        }
        let events = stop();
        let outer = events.iter().find(|e| e.name == "obs.trace.test.emitparent").unwrap();
        let pass = events.iter().find(|e| e.name == "obs.trace.test.pass").unwrap();
        let marker = events.iter().find(|e| e.name == "obs.trace.test.marker").unwrap();
        assert_eq!(pass.parent, Some(outer.id));
        assert_eq!(pass.dur_ns, 42);
        assert_eq!(pass.args, vec![("rewrites", AttrValue::U64(3))]);
        assert_eq!(marker.parent, Some(outer.id));
        assert_eq!(marker.kind, TraceKind::Instant);
    }

    #[test]
    fn inactive_tracing_collects_nothing_but_histograms_still_record() {
        let _gate = lock();
        TRACING.store(false, Ordering::Relaxed);
        sink().lock().clear();
        let before = crate::global().hist("span.obs.trace.test.off").count();
        {
            let _s = crate::span("obs.trace.test.off").attr("ignored", 1u64);
        }
        assert!(sink().lock().is_empty());
        assert_eq!(crate::global().hist("span.obs.trace.test.off").count(), before + 1);
    }

    #[test]
    fn chrome_json_is_valid_and_carries_the_tree() {
        let _gate = lock();
        start();
        {
            let _a = crate::span("obs.trace.test.chrome").attr("n", 7u64);
            instant("obs.trace.test.chromemark", vec![]);
        }
        let events = stop();
        let json = chrome_json(&events);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let rows = v["traceEvents"].as_array().expect("traceEvents array");
        let span_row =
            rows.iter().find(|r| r["name"] == "obs.trace.test.chrome").expect("span event present");
        assert_eq!(span_row["ph"], "X");
        assert_eq!(span_row["cat"], "obs");
        assert_eq!(span_row["args"]["n"], 7);
        assert!(span_row["args"]["span_id"].is_u64());
        assert!(span_row["dur"].is_f64() || span_row["dur"].is_u64());
        let mark = rows
            .iter()
            .find(|r| r["name"] == "obs.trace.test.chromemark")
            .expect("instant present");
        assert_eq!(mark["ph"], "i");
        assert_eq!(mark["args"]["parent_id"], span_row["args"]["span_id"]);
    }

    #[test]
    fn start_clears_the_previous_trace() {
        let _gate = lock();
        start();
        {
            let _s = crate::span("obs.trace.test.stale");
        }
        start();
        {
            let _s = crate::span("obs.trace.test.fresh");
        }
        let events = stop();
        assert!(events.iter().any(|e| e.name == "obs.trace.test.fresh"));
        assert!(!events.iter().any(|e| e.name == "obs.trace.test.stale"));
    }
}
