//! Property tests for `MetricsSnapshot::merge`.
//!
//! The farm merges worker shard snapshots in whatever order shards
//! happen to finish (and the between-platform protocol merges halves in
//! either direction), so the fold must be order-independent and
//! associative. `CampaignMeta::merge_shards` already proves this for
//! results; this pins the same guarantee for telemetry.

use obs::{Histogram, MetricsSnapshot};
use proptest::prelude::*;

/// A well-formed snapshot, built by actually recording into registries
/// (so histogram invariants — trimmed buckets, exact count/sum/min/max —
/// hold by construction, exactly as they do for real shard snapshots).
fn arb_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    let names = prop::sample::select(vec![
        "campaign.runs_done",
        "campaign.disc.Num",
        "farm.respawns",
        "span.campaign.unit",
        "interp.nsperop",
    ]);
    let counter = (names.clone(), 0u64..1_000_000);
    let hist = (names, prop::collection::vec(0u64..=u64::MAX / 4, 0..20));
    (prop::collection::vec(counter, 0..8), prop::collection::vec(hist, 0..6)).prop_map(
        |(counters, hists)| {
            let mut s = MetricsSnapshot::default();
            for (name, v) in counters {
                *s.counters.entry(name.to_string()).or_insert(0) += v;
            }
            for (name, vals) in hists {
                let h = s.hists.entry(name.to_string()).or_default();
                let fresh = Histogram::new();
                for v in vals {
                    fresh.record(v);
                }
                h.merge(&fresh.snapshot());
            }
            s
        },
    )
}

fn merged(a: &MetricsSnapshot, b: &MetricsSnapshot) -> MetricsSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_is_associative(a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    #[test]
    fn empty_is_identity(a in arb_snapshot()) {
        let empty = MetricsSnapshot::default();
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a);
    }

    #[test]
    fn any_shard_arrival_order_yields_the_same_total(
        shards in prop::collection::vec(arb_snapshot(), 1..6),
        seed in any::<u64>(),
    ) {
        let forward = shards.iter().fold(MetricsSnapshot::default(), |acc, s| merged(&acc, s));
        // A deterministic shuffle derived from the seed.
        let mut order: Vec<usize> = (0..shards.len()).collect();
        for i in (1..order.len()).rev() {
            let j = (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)
                % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let shuffled = order
            .iter()
            .fold(MetricsSnapshot::default(), |acc, &i| merged(&acc, &shards[i]));
        prop_assert_eq!(forward, shuffled);
    }
}
