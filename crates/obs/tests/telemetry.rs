//! Concurrency and round-trip tests for the telemetry subsystem.
//!
//! These exercise the exact properties the campaign pipeline relies on:
//! counters and histograms must be lossless under a rayon pool, and
//! snapshots must survive serde unchanged.

use rayon::prelude::*;
use std::sync::Arc;

#[test]
fn rayon_pool_counts_are_exact() {
    // A private registry so parallel test binaries can't interfere.
    let reg = obs::Registry::new();
    let c = reg.counter("test.parallel");
    let per_task = 1_000u64;
    let tasks = 512u64;
    (0..tasks).into_par_iter().for_each(|_| {
        for _ in 0..per_task {
            c.add(1);
        }
    });
    assert_eq!(c.value(), tasks * per_task, "sharded counter lost increments");
}

#[test]
fn rayon_pool_histogram_is_exact() {
    let h = Arc::new(obs::Histogram::new());
    let n = 10_000u64;
    (1..=n).into_par_iter().for_each(|v| h.record(v));
    let s = h.snapshot();
    assert_eq!(s.count, n);
    assert_eq!(s.sum, n * (n + 1) / 2);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, n);
    assert_eq!(s.buckets.iter().sum::<u64>(), n);
}

#[test]
fn mixed_metric_names_do_not_collide_under_parallelism() {
    let reg = obs::Registry::new();
    (0..64u64).into_par_iter().for_each(|i| {
        reg.counter(&format!("test.shardname.{}", i % 4)).add(i);
    });
    let snap = reg.snapshot();
    let total: u64 = snap.counters.values().sum();
    assert_eq!(total, (0..64u64).sum::<u64>());
    assert_eq!(snap.counters.len(), 4);
}

#[test]
fn snapshot_roundtrips_through_serde() {
    let reg = obs::Registry::new();
    reg.counter("gpucc.compiles").add(42);
    let h = reg.hist("span.campaign.generate");
    for v in [10u64, 1_000, 1_000_000] {
        h.record(v);
    }
    let snap = reg.snapshot();
    let json = serde_json::to_string_pretty(&snap).unwrap();
    let back: obs::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(snap, back);
    assert_eq!(back.counter("gpucc.compiles"), 42);
    assert_eq!(back.hists["span.campaign.generate"].count, 3);
}

#[test]
fn merged_shards_equal_one_big_run() {
    // Simulate the between-platform protocol: two half-campaigns whose
    // snapshots merge into the same totals as one combined run.
    let a = obs::Registry::new();
    let b = obs::Registry::new();
    let whole = obs::Registry::new();
    for v in 0..100u64 {
        let side = if v % 2 == 0 { &a } else { &b };
        side.counter("campaign.runs_done").add(1);
        side.hist("h").record(v);
        whole.counter("campaign.runs_done").add(1);
        whole.hist("h").record(v);
    }
    let mut merged = a.snapshot();
    merged.merge(&b.snapshot());
    let want = whole.snapshot();
    assert_eq!(merged.counters, want.counters);
    assert_eq!(merged.hists["h"].count, want.hists["h"].count);
    assert_eq!(merged.hists["h"].sum, want.hists["h"].sum);
    assert_eq!(merged.hists["h"].buckets, want.hists["h"].buckets);
}

#[test]
fn disabled_telemetry_records_nothing_via_free_fns() {
    obs::reset();
    obs::set_enabled(false);
    obs::add("test.disabled.counter", 5);
    obs::record("test.disabled.hist", 5);
    {
        let _s = obs::span("test.disabled.span");
    }
    obs::set_enabled(true);
    let snap = obs::snapshot();
    assert_eq!(snap.counter("test.disabled.counter"), 0);
    assert!(!snap.hists.contains_key("test.disabled.hist"));
    assert!(!snap.hists.contains_key("span.test.disabled.span"));
}
