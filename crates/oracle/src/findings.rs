//! Violation findings: the JSONL-serializable record of a toolchain bug.

use progen::ast::Program;
use progen::emit::emit_kernel;
use serde::Serialize;

/// One confirmed oracle violation, shrunk and ready to file.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Which oracle flagged it: `transval`, `metamorphic` or `roundtrip`.
    pub kind: String,
    /// Index of the program within the budget (regenerate with the
    /// campaign seed to reproduce).
    pub program_index: u64,
    /// Program id.
    pub program_id: String,
    /// Toolchain (absent for round-trip findings).
    pub toolchain: Option<String>,
    /// Opt level (absent for round-trip findings).
    pub level: Option<String>,
    /// Metamorphic transformation (metamorphic findings only).
    pub transform: Option<String>,
    /// Index of the failing input set.
    pub input_index: Option<usize>,
    /// The failing input, rendered in the paper's input format.
    pub input: Option<String>,
    /// Pass/stage the violation is attributed to.
    pub pass: String,
    /// Expected value bits (hex), when applicable.
    pub expected_bits: Option<String>,
    /// Actual value bits (hex), when applicable.
    pub actual_bits: Option<String>,
    /// Human-readable description.
    pub detail: String,
    /// Statement count before shrinking.
    pub original_stmts: usize,
    /// Statement count after shrinking.
    pub reduced_stmts: usize,
    /// Kernel source of the (shrunk) violating program.
    pub kernel: String,
}

impl Finding {
    /// Attach the (possibly shrunk) program: kernel source and counts.
    pub fn with_program(mut self, original: &Program, reduced: &Program) -> Finding {
        self.original_stmts = original.stmt_count();
        self.reduced_stmts = reduced.stmt_count();
        self.kernel = emit_kernel(reduced);
        self
    }

    /// One-line human rendering for stderr/status output.
    pub fn summary_line(&self) -> String {
        let mut ctx = Vec::new();
        if let Some(tc) = &self.toolchain {
            ctx.push(tc.clone());
        }
        if let Some(level) = &self.level {
            ctx.push(level.clone());
        }
        if let Some(t) = &self.transform {
            ctx.push(t.clone());
        }
        format!(
            "[{}] program {} ({}) pass={}: {}",
            self.kind,
            self.program_index,
            ctx.join(" "),
            self.pass,
            self.detail
        )
    }
}

/// Append findings to a JSONL log, one `finding` event per violation.
pub fn write_findings(log: &obs::JsonlWriter, findings: &[Finding]) -> std::io::Result<()> {
    for f in findings {
        log.event("finding", serde_json::to_value(f).expect("finding serializes"))?;
    }
    Ok(())
}
