//! # oracle — self-validation of the simulated toolchains
//!
//! The campaign's differential results (paper Tables V–IX) are only
//! trustworthy if the simulated compilers and devices are themselves
//! correct: a value-changing bug in a `gpucc` pass would masquerade as a
//! "compiler-induced numerical inconsistency". This crate tests the
//! pipeline against itself, per toolchain, so a finding here is a
//! toolchain bug by construction — never a paper-style discrepancy:
//!
//! * [`transval`] — translation validation. Strict-mode compilation
//!   (`O0`–`O3`, no fast math) must be bit-identical to the reference
//!   interpretation (the unoptimized lowering) on every input. Each
//!   compile is replayed stage by stage via
//!   [`gpucc::pipeline::compile_traced`]; the first *structural* stage
//!   (`const-fold`, `cse`, `dce`, or the lowering itself) that changes
//!   value bits is reported as a violation and attributed by name.
//!   Semantic stages (the [`difftest::attribution::SEMANTIC_PASSES`]:
//!   FMA contraction and the fast-math set) may legitimately change bits
//!   and explain a divergence instead.
//! * [`metamorph`] — metamorphic testing. Semantics-preserving program
//!   transformations ([`progen::transform`]) must not change the outcome
//!   for any `{toolchain} × {opt level}`, modulo the same semantic-pass
//!   allowance; plus the emit→parse literal round trip.
//! * [`truth`] — ground-truth self-validation. The double-double
//!   reference executor is the campaign's oracle for the fast-math
//!   cells translation validation deliberately skips, so its own
//!   invariants are checked here: it must execute whenever the strict
//!   quirkless interpretation does, and the truth bits must be
//!   identical across both toolchains' `O0` lowerings.
//! * [`runner`] — the seeded, rayon-parallel budget driver behind the
//!   `oracle` CLI command: deterministic regardless of thread count,
//!   JSONL findings via `obs`, and automatic shrinking of violating
//!   programs through [`difftest::reduce`].
//!
//! The negative side is covered by the injected-bug self-tests
//! (`tests/injection.rs`): deliberately broken passes behind gpucc's
//! `oracle-inject` feature must each be caught and attributed to the
//! correct pass.

#![deny(missing_docs)]

pub mod findings;
pub mod metamorph;
pub mod runner;
pub mod transval;
pub mod truth;

pub use findings::Finding;
pub use runner::{run_oracle, OracleConfig, OracleReport};
pub use transval::{CheckVerdict, ViolationDetail};
