//! Metamorphic checks: semantics-preserving transformations must not
//! change a program's outcome, per toolchain and opt level.
//!
//! Each [`progen::transform::Transform`] carries a contract:
//!
//! * `reorder-independent` and `inject-dead-code` must be **bit-exact at
//!   every level** — no pass is sensitive to the order of independent
//!   statements, and a never-read temporary cannot feed `comp`;
//! * `introduce-tmp` and `eliminate-tmp` are bit-exact at `O0`; at `O1+`
//!   the changed expression shape may alter what a *semantic* pass (FMA
//!   contraction, reassociation, …) does. Divergence is accepted as
//!   [`CheckVerdict::Explained`] only when such a pass actually fired in
//!   either compile; otherwise it is a violation, attributed to the first
//!   stage at which the original's and the variant's values part ways.
//!
//! The fifth check is the literal re-parsing round trip
//! ([`check_roundtrip`]): `parse(emit(p)) == p`.

use crate::transval::{device_for, is_semantic, CheckVerdict, ViolationDetail};
use gpucc::pipeline::{compile_traced, CompileStats, OptLevel, PassTrace, Toolchain};
use gpucc::vm::execute_ir_tier;
use gpucc::ExecTier;
use gpusim::Device;
use progen::ast::Program;
use progen::inputs::InputSet;
use progen::transform::{apply, parse_roundtrip, Transform};

/// One metamorphic check result for `(transform, toolchain, level, input)`.
#[derive(Debug, Clone)]
pub struct MetaOutcome {
    /// Transformation applied.
    pub transform: Transform,
    /// Toolchain checked.
    pub toolchain: Toolchain,
    /// Opt level checked.
    pub level: OptLevel,
    /// Index into the input slice.
    pub input_index: usize,
    /// What the oracle concluded.
    pub verdict: CheckVerdict,
}

/// Run every applicable transformation of `program` through both
/// toolchains at all five opt levels, on every input. Executes through
/// the reference interpreter; the runner picks its tier via
/// [`check_metamorphic_tier`].
pub fn check_metamorphic(program: &Program, inputs: &[InputSet], seed: u64) -> Vec<MetaOutcome> {
    check_metamorphic_tier(program, inputs, seed, ExecTier::Interp)
}

/// [`check_metamorphic`] executing through `tier` (see
/// [`crate::transval::check_strict_tier`] for the tier contract).
pub fn check_metamorphic_tier(
    program: &Program,
    inputs: &[InputSet],
    seed: u64,
    tier: ExecTier,
) -> Vec<MetaOutcome> {
    let mut out = Vec::new();
    for transform in Transform::ALL {
        let Some(variant) = apply(program, transform, seed) else { continue };
        for toolchain in Toolchain::ALL {
            let device = device_for(toolchain);
            for level in OptLevel::ALL {
                let (orig_ir, orig_stats, orig_traces) =
                    compile_traced(program, toolchain, level, false);
                let (var_ir, var_stats, var_traces) =
                    compile_traced(&variant, toolchain, level, false);
                for (input_index, input) in inputs.iter().enumerate() {
                    let verdict = judge(
                        transform,
                        &device,
                        input,
                        (&orig_ir, &orig_stats, &orig_traces),
                        (&var_ir, &var_stats, &var_traces),
                        tier,
                    );
                    out.push(MetaOutcome { transform, toolchain, level, input_index, verdict });
                }
            }
        }
    }
    out
}

type Compiled<'a> = (&'a gpucc::KernelIr, &'a CompileStats, &'a [PassTrace]);

fn judge(
    transform: Transform,
    device: &Device,
    input: &InputSet,
    original: Compiled<'_>,
    variant: Compiled<'_>,
    tier: ExecTier,
) -> CheckVerdict {
    let (orig_ir, orig_stats, orig_traces) = original;
    let (var_ir, var_stats, var_traces) = variant;
    let orig = match execute_ir_tier(tier, orig_ir, device, input) {
        Ok(r) => r,
        Err(_) => return CheckVerdict::Skipped,
    };
    let var = match execute_ir_tier(tier, var_ir, device, input) {
        Ok(r) => r,
        Err(e) => {
            return CheckVerdict::Violation(ViolationDetail {
                pass: diverging_stage(orig_traces, var_traces, device, input, tier),
                expected_bits: orig.value.bits(),
                actual_bits: orig.value.bits(),
                detail: format!(
                    "{transform} variant fails to execute ({e}) though the original runs"
                ),
            });
        }
    };
    if orig.value.bits() == var.value.bits() {
        return CheckVerdict::Consistent;
    }
    if !transform.bit_exact_at_all_levels() {
        let mut fired = semantic_fired(orig_stats);
        for name in semantic_fired(var_stats) {
            if !fired.contains(&name) {
                fired.push(name);
            }
        }
        if !fired.is_empty() {
            return CheckVerdict::Explained { passes: fired };
        }
    }
    CheckVerdict::Violation(ViolationDetail {
        pass: diverging_stage(orig_traces, var_traces, device, input, tier),
        expected_bits: orig.value.bits(),
        actual_bits: var.value.bits(),
        detail: format!("{transform} variant diverges with no semantic pass to explain it"),
    })
}

/// Semantic passes that fired (rewrites > 0) in one compile.
fn semantic_fired(stats: &CompileStats) -> Vec<&'static str> {
    stats.passes.iter().filter(|p| p.rewrites > 0 && is_semantic(p.name)).map(|p| p.name).collect()
}

/// Attribute a metamorphic divergence: the pass schedules of the original
/// and the variant are identical for a given `(toolchain, level)`, so the
/// culprit is the first stage at which the two executions' values differ.
fn diverging_stage(
    orig_traces: &[PassTrace],
    var_traces: &[PassTrace],
    device: &Device,
    input: &InputSet,
    tier: ExecTier,
) -> String {
    for (o, v) in orig_traces.iter().zip(var_traces) {
        let (Ok(ro), Ok(rv)) = (
            execute_ir_tier(tier, &o.ir, device, input),
            execute_ir_tier(tier, &v.ir, device, input),
        ) else {
            return o.name.to_string();
        };
        if ro.value.bits() != rv.value.bits() {
            return o.name.to_string();
        }
    }
    difftest::attribution::UNATTRIBUTED.to_string()
}

/// Check the emit→parse literal round trip. Returns `Some(detail)` when
/// the round trip is not exact (a front-end bug).
pub fn check_roundtrip(program: &Program) -> Option<String> {
    match parse_roundtrip(program) {
        Err(e) => Some(format!("emitted kernel failed to re-parse: {e}")),
        Ok(back) if back != *program => Some("re-parsed AST differs from the original".to_string()),
        Ok(_) => None,
    }
}

/// Shrinking predicate: does the metamorphic check of `(transform, seed)`
/// still flag a violation on `(toolchain, level, input)` for `program`?
/// Executes through the reference interpreter (see
/// [`crate::transval::still_violates`]).
pub fn still_violates(
    program: &Program,
    transform: Transform,
    seed: u64,
    toolchain: Toolchain,
    level: OptLevel,
    input: &InputSet,
) -> bool {
    let Some(variant) = apply(program, transform, seed) else { return false };
    let device = device_for(toolchain);
    let orig = compile_traced(program, toolchain, level, false);
    let var = compile_traced(&variant, toolchain, level, false);
    matches!(
        judge(
            transform,
            &device,
            input,
            (&orig.0, &orig.1, &orig.2),
            (&var.0, &var.1, &var.2),
            ExecTier::Interp,
        ),
        CheckVerdict::Violation(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::inputs::generate_inputs;
    use progen::Precision;
    use std::collections::BTreeSet;

    #[test]
    fn clean_toolchains_pass_metamorphic_checks() {
        for i in 0..10 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 2024, i);
            let inputs = generate_inputs(&p, 2024, 2);
            for o in check_metamorphic(&p, &inputs, 2024 ^ i) {
                assert!(
                    !matches!(o.verdict, CheckVerdict::Violation(_)),
                    "program {i} {} {} {} input {}: {:?}",
                    o.transform,
                    o.toolchain,
                    o.level,
                    o.input_index,
                    o.verdict
                );
            }
        }
    }

    #[test]
    fn metamorphic_checks_cover_all_levels_and_toolchains() {
        // across a handful of programs every (toolchain, level) cell must
        // be exercised — the acceptance criterion for the oracle command
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for i in 0..5 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 5, i);
            let inputs = generate_inputs(&p, 5, 1);
            for o in check_metamorphic(&p, &inputs, i) {
                seen.insert(format!("{}:{}", o.toolchain.name(), o.level.label()));
            }
        }
        assert_eq!(seen.len(), 10, "coverage: {seen:?}");
    }

    #[test]
    fn roundtrip_is_exact_for_generated_programs() {
        for i in 0..25 {
            let p = generate_program(&GenConfig::varity_default(Precision::F32), 11, i);
            assert_eq!(check_roundtrip(&p), None, "program {i}");
        }
    }
}
