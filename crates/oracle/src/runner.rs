//! The budgeted oracle driver: seeded, rayon-parallel, deterministic.
//!
//! A budget of `N` checks programs `0..N` generated from `(gen, seed)` —
//! the same generator the campaign uses, so the oracle validates the
//! exact program population behind the paper tables. Work is distributed
//! with `into_par_iter().map().collect()`, which preserves index order:
//! the report (including finding order) is identical at any thread count.
//!
//! Telemetry (when `obs` is enabled): `oracle.programs`,
//! `oracle.checks.{transval,truth,metamorphic,roundtrip}`, and the
//! verdict counters `oracle.{consistent,explained,violations,skipped}`.

use crate::findings::Finding;
use crate::metamorph::{self, check_metamorphic_tier, check_roundtrip};
use crate::transval::{check_strict_tier, still_violates, CheckVerdict};
use crate::truth::check_truth;
use difftest::reduce::reduce_program;
use gpucc::pipeline::OptLevel;
use gpucc::ExecTier;
use progen::ast::Precision;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::inputs::generate_inputs;
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

/// Configuration of one oracle run.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Kernel precision to generate.
    pub precision: Precision,
    /// Number of programs to check.
    pub budget: usize,
    /// Input sets per program.
    pub inputs_per_program: usize,
    /// Seed for program and input generation (and transformation sites).
    pub seed: u64,
    /// Program-generation grammar.
    pub gen: GenConfig,
    /// Shrink violating programs through `difftest::reduce`.
    pub shrink: bool,
    /// Execution tier the checks run through. The tiers are
    /// bit-identical, so verdicts cannot depend on this; under
    /// [`ExecTier::Differential`] a vm/interp divergence panics and is
    /// tallied in [`OracleReport::faulted`] instead.
    pub exec_tier: ExecTier,
}

impl OracleConfig {
    /// Default configuration: the campaign's grammar for `precision`,
    /// 3 inputs per program, shrinking on, vm execution tier.
    pub fn new(precision: Precision, budget: usize, seed: u64) -> OracleConfig {
        OracleConfig {
            precision,
            budget,
            inputs_per_program: 3,
            seed,
            gen: GenConfig::varity_default(precision),
            shrink: true,
            exec_tier: ExecTier::Vm,
        }
    }
}

/// Aggregated result of one oracle run.
#[derive(Debug, Clone, Serialize)]
pub struct OracleReport {
    /// Precision label (`fp64`/`fp32`).
    pub precision: String,
    /// Programs requested.
    pub budget: usize,
    /// Generation seed.
    pub seed: u64,
    /// Execution tier the checks ran through (`interp`/`vm`/`differential`).
    pub exec_tier: String,
    /// Programs actually checked.
    pub programs_checked: u64,
    /// Translation-validation checks run.
    pub transval_checks: u64,
    /// Ground-truth (reference-executor) checks run.
    pub truth_checks: u64,
    /// Metamorphic checks run.
    pub metamorphic_checks: u64,
    /// Round-trip checks run.
    pub roundtrip_checks: u64,
    /// Checks bit-identical to their reference.
    pub consistent: u64,
    /// Checks whose divergence a semantic pass explains.
    pub explained: u64,
    /// Checks skipped (reference failed to execute).
    pub skipped: u64,
    /// Programs whose check panicked; the panic was contained by
    /// per-program isolation and the rest of the run completed.
    pub faulted: u64,
    /// How often each semantic pass explained a divergence.
    pub explained_by_pass: BTreeMap<String, u64>,
    /// Metamorphic checks per `toolchain:level` cell — the acceptance
    /// criterion requires all 10 cells non-zero.
    pub metamorphic_coverage: BTreeMap<String, u64>,
    /// Confirmed violations (toolchain bugs), shrunk.
    pub violations: Vec<Finding>,
}

impl OracleReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total checks of all four oracles.
    pub fn total_checks(&self) -> u64 {
        self.transval_checks + self.truth_checks + self.metamorphic_checks + self.roundtrip_checks
    }
}

/// Per-program tally, folded into the report in index order.
#[derive(Debug, Default)]
struct ProgramOutcome {
    transval_checks: u64,
    truth_checks: u64,
    metamorphic_checks: u64,
    roundtrip_checks: u64,
    consistent: u64,
    explained: u64,
    skipped: u64,
    faulted: u64,
    explained_by_pass: BTreeMap<String, u64>,
    metamorphic_coverage: BTreeMap<String, u64>,
    findings: Vec<Finding>,
}

/// Run the oracle over the configured budget.
///
/// Each program's checks run inside [`difftest::fault::catch_isolated`]:
/// a panic anywhere in one program's oracle pipeline is contained and
/// tallied in [`OracleReport::faulted`] instead of aborting the whole
/// run.
pub fn run_oracle(config: &OracleConfig) -> OracleReport {
    let _span = obs::span("oracle.run").attr("tier", config.exec_tier.label());
    let outcomes: Vec<ProgramOutcome> = (0..config.budget as u64)
        .into_par_iter()
        .map(|index| match difftest::fault::catch_isolated(|| check_program(config, index)) {
            Ok(o) => o,
            Err(_panic_msg) => ProgramOutcome { faulted: 1, ..ProgramOutcome::default() },
        })
        .collect();

    let mut report = OracleReport {
        precision: config.precision.label().to_string(),
        budget: config.budget,
        seed: config.seed,
        exec_tier: config.exec_tier.label().to_string(),
        programs_checked: outcomes.len() as u64,
        transval_checks: 0,
        truth_checks: 0,
        metamorphic_checks: 0,
        roundtrip_checks: 0,
        consistent: 0,
        explained: 0,
        skipped: 0,
        faulted: 0,
        explained_by_pass: BTreeMap::new(),
        metamorphic_coverage: BTreeMap::new(),
        violations: Vec::new(),
    };
    for o in outcomes {
        report.transval_checks += o.transval_checks;
        report.truth_checks += o.truth_checks;
        report.metamorphic_checks += o.metamorphic_checks;
        report.roundtrip_checks += o.roundtrip_checks;
        report.consistent += o.consistent;
        report.explained += o.explained;
        report.skipped += o.skipped;
        report.faulted += o.faulted;
        for (pass, n) in o.explained_by_pass {
            *report.explained_by_pass.entry(pass).or_default() += n;
        }
        for (cell, n) in o.metamorphic_coverage {
            *report.metamorphic_coverage.entry(cell).or_default() += n;
        }
        report.violations.extend(o.findings);
    }

    if obs::enabled() {
        obs::add("oracle.programs", report.programs_checked);
        obs::add("oracle.checks.transval", report.transval_checks);
        obs::add("oracle.checks.truth", report.truth_checks);
        obs::add("oracle.checks.metamorphic", report.metamorphic_checks);
        obs::add("oracle.checks.roundtrip", report.roundtrip_checks);
        obs::add("oracle.consistent", report.consistent);
        obs::add("oracle.explained", report.explained);
        obs::add("oracle.skipped", report.skipped);
        obs::add("oracle.faults", report.faulted);
        obs::add("oracle.violations", report.violations.len() as u64);
    }
    report
}

/// Transformation-site seed for program `index` (distinct from the
/// generation stream so adding transforms never shifts generation).
fn transform_seed(seed: u64, index: u64) -> u64 {
    seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ index.wrapping_mul(0x9FB2_1C65_1E98_DF25)
}

fn check_program(config: &OracleConfig, index: u64) -> ProgramOutcome {
    let program = generate_program(&config.gen, config.seed, index);
    let inputs = generate_inputs(&program, config.seed, config.inputs_per_program);
    let mut out = ProgramOutcome::default();

    // 1. translation validation (strict modes vs reference)
    for o in check_strict_tier(&program, &inputs, config.exec_tier) {
        out.transval_checks += 1;
        match o.verdict {
            CheckVerdict::Consistent => out.consistent += 1,
            CheckVerdict::Explained { passes } => {
                out.explained += 1;
                for pass in passes {
                    *out.explained_by_pass.entry(pass.to_string()).or_default() += 1;
                }
            }
            CheckVerdict::Skipped => out.skipped += 1,
            CheckVerdict::Violation(v) => {
                let input = &inputs[o.input_index];
                let reduced = if config.shrink {
                    reduce_program(&program, |p| still_violates(p, o.toolchain, o.level, input))
                        .program
                } else {
                    program.clone()
                };
                out.findings.push(
                    Finding {
                        kind: "transval".into(),
                        program_index: index,
                        program_id: program.id.clone(),
                        toolchain: Some(o.toolchain.name().to_string()),
                        level: Some(o.level.label().to_string()),
                        transform: None,
                        input_index: Some(o.input_index),
                        input: Some(input.render(program.precision)),
                        pass: v.pass,
                        expected_bits: Some(format!("{:#018x}", v.expected_bits)),
                        actual_bits: Some(format!("{:#018x}", v.actual_bits)),
                        detail: v.detail,
                        original_stmts: 0,
                        reduced_stmts: 0,
                        kernel: String::new(),
                    }
                    .with_program(&program, &reduced),
                );
            }
        }
    }

    // 2. ground-truth health (availability + toolchain invariance of the
    //    double-double reference executor)
    for o in check_truth(&program, &inputs) {
        out.truth_checks += 1;
        match o.verdict {
            CheckVerdict::Consistent | CheckVerdict::Explained { .. } => out.consistent += 1,
            CheckVerdict::Skipped => out.skipped += 1,
            CheckVerdict::Violation(v) => {
                let input = &inputs[o.input_index];
                let reduced = if config.shrink {
                    reduce_program(&program, |p| crate::truth::still_violates(p, input)).program
                } else {
                    program.clone()
                };
                out.findings.push(
                    Finding {
                        kind: "truth".into(),
                        program_index: index,
                        program_id: program.id.clone(),
                        toolchain: None,
                        level: Some(OptLevel::O0.label().to_string()),
                        transform: None,
                        input_index: Some(o.input_index),
                        input: Some(input.render(program.precision)),
                        pass: v.pass,
                        expected_bits: Some(format!("{:#018x}", v.expected_bits)),
                        actual_bits: Some(format!("{:#018x}", v.actual_bits)),
                        detail: v.detail,
                        original_stmts: 0,
                        reduced_stmts: 0,
                        kernel: String::new(),
                    }
                    .with_program(&program, &reduced),
                );
            }
        }
    }

    // 3. metamorphic checks (all transforms × both toolchains × 5 levels)
    let tseed = transform_seed(config.seed, index);
    for o in check_metamorphic_tier(&program, &inputs, tseed, config.exec_tier) {
        out.metamorphic_checks += 1;
        let cell = format!("{}:{}", o.toolchain.name(), o.level.label());
        *out.metamorphic_coverage.entry(cell).or_default() += 1;
        match o.verdict {
            CheckVerdict::Consistent => out.consistent += 1,
            CheckVerdict::Explained { passes } => {
                out.explained += 1;
                for pass in passes {
                    *out.explained_by_pass.entry(pass.to_string()).or_default() += 1;
                }
            }
            CheckVerdict::Skipped => out.skipped += 1,
            CheckVerdict::Violation(v) => {
                let input = &inputs[o.input_index];
                let reduced = if config.shrink {
                    reduce_program(&program, |p| {
                        metamorph::still_violates(
                            p,
                            o.transform,
                            tseed,
                            o.toolchain,
                            o.level,
                            input,
                        )
                    })
                    .program
                } else {
                    program.clone()
                };
                out.findings.push(
                    Finding {
                        kind: "metamorphic".into(),
                        program_index: index,
                        program_id: program.id.clone(),
                        toolchain: Some(o.toolchain.name().to_string()),
                        level: Some(o.level.label().to_string()),
                        transform: Some(o.transform.name().to_string()),
                        input_index: Some(o.input_index),
                        input: Some(input.render(program.precision)),
                        pass: v.pass,
                        expected_bits: Some(format!("{:#018x}", v.expected_bits)),
                        actual_bits: Some(format!("{:#018x}", v.actual_bits)),
                        detail: v.detail,
                        original_stmts: 0,
                        reduced_stmts: 0,
                        kernel: String::new(),
                    }
                    .with_program(&program, &reduced),
                );
            }
        }
    }

    // 4. literal re-parsing round trip
    out.roundtrip_checks += 1;
    match check_roundtrip(&program) {
        None => out.consistent += 1,
        Some(detail) => {
            let reduced = if config.shrink {
                reduce_program(&program, |p| check_roundtrip(p).is_some()).program
            } else {
                program.clone()
            };
            out.findings.push(
                Finding {
                    kind: "roundtrip".into(),
                    program_index: index,
                    program_id: program.id.clone(),
                    toolchain: None,
                    level: None,
                    transform: None,
                    input_index: None,
                    input: None,
                    pass: "emit/parse".into(),
                    expected_bits: None,
                    actual_bits: None,
                    detail,
                    original_stmts: 0,
                    reduced_stmts: 0,
                    kernel: String::new(),
                }
                .with_program(&program, &reduced),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(budget: usize, seed: u64) -> OracleConfig {
        let mut c = OracleConfig::new(Precision::F64, budget, seed);
        c.inputs_per_program = 2;
        c
    }

    #[test]
    fn clean_run_has_zero_violations() {
        let report = run_oracle(&small(12, 2024));
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert_eq!(report.programs_checked, 12);
        assert!(report.consistent > 0);
        assert!(report.total_checks() >= report.consistent);
        assert_eq!(report.faulted, 0, "no generated program should panic the oracle");
        // one ground-truth check per (program, input)
        assert_eq!(report.truth_checks, 12 * 2);
    }

    #[test]
    fn report_is_deterministic_across_runs() {
        let a = serde_json::to_string(&run_oracle(&small(8, 7))).unwrap();
        let b = serde_json::to_string(&run_oracle(&small(8, 7))).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn coverage_spans_all_ten_toolchain_level_cells() {
        let report = run_oracle(&small(6, 3));
        assert_eq!(report.metamorphic_coverage.len(), 10, "{:?}", report.metamorphic_coverage);
        assert!(report.metamorphic_coverage.values().all(|&n| n > 0));
    }

    #[test]
    fn fma_contract_explains_strict_divergence() {
        // the paper's core mechanism must show up as an explained pass
        let report = run_oracle(&small(30, 2024));
        assert!(
            report.explained_by_pass.contains_key("fma-contract"),
            "{:?}",
            report.explained_by_pass
        );
    }

    #[test]
    fn report_is_identical_across_execution_tiers() {
        // the tier is an engine choice, not a semantics choice: interp,
        // vm, and differential must produce the same verdicts, counts,
        // and findings on the same population
        let mut reports = [ExecTier::Interp, ExecTier::Vm, ExecTier::Differential].map(|tier| {
            let mut c = small(10, 2024);
            c.exec_tier = tier;
            run_oracle(&c)
        });
        for r in &mut reports {
            r.exec_tier = String::new(); // the only field allowed to differ
        }
        let [a, b, c] = reports;
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "interp vs vm");
        assert_eq!(format!("{a:?}"), format!("{c:?}"), "interp vs differential");
    }

    #[test]
    fn differential_tier_runs_clean_on_a_healthy_vm() {
        // every execution double-runs and cross-checks; any vm/interp
        // divergence would panic and surface here as a fault
        let mut c = small(8, 5);
        c.exec_tier = ExecTier::Differential;
        let report = run_oracle(&c);
        assert_eq!(report.faulted, 0, "vm diverged from the interpreter");
        assert!(report.is_clean(), "{:#?}", report.violations);
        assert_eq!(report.exec_tier, "differential");
    }

    #[test]
    fn shrink_flag_is_respected_on_clean_runs() {
        // no violations → shrink never invoked; both configs agree
        let mut c = small(5, 11);
        c.shrink = false;
        let a = serde_json::to_string(&run_oracle(&c)).unwrap();
        c.shrink = true;
        let b = serde_json::to_string(&run_oracle(&c)).unwrap();
        assert_eq!(a, b);
    }
}
