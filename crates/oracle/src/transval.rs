//! Translation validation: strict-mode compiles vs the reference
//! interpretation.
//!
//! The reference semantics of a program is its unoptimized lowering (the
//! `O0` compile — straight codegen, no passes) executed on the device
//! matched to the toolchain. For every strict level the traced compile is
//! replayed snapshot by snapshot and each stage's result is compared to
//! its predecessor's:
//!
//! * a **structural** stage (`lower`, `const-fold`, `cse`, `dce`) that
//!   changes value bits is a toolchain bug — reported as a
//!   [`CheckVerdict::Violation`] attributed to that stage;
//! * a **semantic** stage ([`difftest::attribution::SEMANTIC_PASSES`] —
//!   notably `fma-contract`, which runs at `O1+` even without fast math
//!   and is the paper's central divergence mechanism) may change bits;
//!   such runs end as [`CheckVerdict::Explained`].
//!
//! Comparison is strictly per toolchain (nvcc against nvcc's reference on
//! the NVIDIA-like device, hipcc against hipcc's on the AMD-like device):
//! cross-toolchain differences are the *paper's* subject, not a bug.

use gpucc::pipeline::{compile, compile_traced, OptLevel, PassTrace, Toolchain};
use gpucc::vm::execute_ir_tier;
use gpucc::ExecTier;
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::Program;
use progen::inputs::InputSet;

/// Levels the strict-mode oracle checks (all the non-fast-math levels).
pub const STRICT_LEVELS: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

/// The device a toolchain's output runs on, with the full quirk set (the
/// campaign's configuration — the oracle must validate what the campaign
/// actually executes).
pub fn device_for(toolchain: Toolchain) -> Device {
    let kind = match toolchain {
        Toolchain::Nvcc => DeviceKind::NvidiaLike,
        Toolchain::Hipcc => DeviceKind::AmdLike,
    };
    Device::with_quirks(kind, QuirkSet::all())
}

/// True for stages that may legitimately change value bits.
pub fn is_semantic(stage: &str) -> bool {
    difftest::attribution::SEMANTIC_PASSES.contains(&stage)
}

/// Everything the oracle knows about one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationDetail {
    /// Stage the violation is attributed to (`lower`, `const-fold`, …).
    pub pass: String,
    /// Value bits before the offending stage.
    pub expected_bits: u64,
    /// Value bits after it.
    pub actual_bits: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Verdict of one oracle check.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckVerdict {
    /// Bit-identical to the reference at every stage.
    Consistent,
    /// Final bits differ from the reference, but every change came from a
    /// semantic stage (named here, in execution order).
    Explained {
        /// Semantic stages that changed bits.
        passes: Vec<&'static str>,
    },
    /// A structural stage changed value bits: a toolchain bug.
    Violation(ViolationDetail),
    /// The reference itself failed to execute; nothing to compare.
    Skipped,
}

/// One strict-mode check result for `(toolchain, level, input)`.
#[derive(Debug, Clone)]
pub struct StrictOutcome {
    /// Toolchain checked.
    pub toolchain: Toolchain,
    /// Opt level checked.
    pub level: OptLevel,
    /// Index into the input slice.
    pub input_index: usize,
    /// What the oracle concluded.
    pub verdict: CheckVerdict,
}

/// Run the translation-validation oracle on one program: every strict
/// level of both toolchains against each toolchain's own reference, on
/// every input. Executes through the reference interpreter; the runner
/// picks its tier via [`check_strict_tier`].
pub fn check_strict(program: &Program, inputs: &[InputSet]) -> Vec<StrictOutcome> {
    check_strict_tier(program, inputs, ExecTier::Interp)
}

/// [`check_strict`] executing stage snapshots through `tier`. The tiers
/// are bit-identical by construction, so the verdicts cannot depend on
/// the tier — unless the vm itself is broken, which
/// [`ExecTier::Differential`] converts into a panic that the runner's
/// per-program isolation reports as a fault.
pub fn check_strict_tier(
    program: &Program,
    inputs: &[InputSet],
    tier: ExecTier,
) -> Vec<StrictOutcome> {
    let mut out = Vec::new();
    for toolchain in Toolchain::ALL {
        let device = device_for(toolchain);
        let reference_ir = compile(program, toolchain, OptLevel::O0, false);
        for level in STRICT_LEVELS {
            let (_, _, traces) = compile_traced(program, toolchain, level, false);
            for (input_index, input) in inputs.iter().enumerate() {
                let verdict = match execute_ir_tier(tier, &reference_ir, &device, input) {
                    Err(_) => CheckVerdict::Skipped,
                    Ok(reference) => {
                        walk_stages(&traces, &device, input, reference.value.bits(), tier)
                    }
                };
                out.push(StrictOutcome { toolchain, level, input_index, verdict });
            }
        }
    }
    out
}

/// Execute every stage snapshot in order, comparing each result to its
/// predecessor's (the first snapshot compares to `reference_bits`).
pub(crate) fn walk_stages(
    traces: &[PassTrace],
    device: &Device,
    input: &InputSet,
    reference_bits: u64,
    tier: ExecTier,
) -> CheckVerdict {
    let mut prev_bits = reference_bits;
    let mut prev_name = "reference";
    let mut semantic: Vec<&'static str> = Vec::new();
    for trace in traces {
        let bits = match execute_ir_tier(tier, &trace.ir, device, input) {
            Ok(r) => r.value.bits(),
            Err(e) => {
                // the predecessor executed, this stage does not: that is a
                // structural break whoever the stage is
                return CheckVerdict::Violation(ViolationDetail {
                    pass: trace.name.to_string(),
                    expected_bits: prev_bits,
                    actual_bits: prev_bits,
                    detail: format!(
                        "stage `{}` fails to execute ({e}) though `{prev_name}` succeeded",
                        trace.name
                    ),
                });
            }
        };
        if bits != prev_bits {
            if is_semantic(trace.name) {
                semantic.push(trace.name);
            } else {
                return CheckVerdict::Violation(ViolationDetail {
                    pass: trace.name.to_string(),
                    expected_bits: prev_bits,
                    actual_bits: bits,
                    detail: format!(
                        "structural stage `{}` changed value bits after `{prev_name}`",
                        trace.name
                    ),
                });
            }
        }
        prev_bits = bits;
        prev_name = trace.name;
    }
    if prev_bits == reference_bits {
        CheckVerdict::Consistent
    } else {
        CheckVerdict::Explained { passes: semantic }
    }
}

/// Shrinking predicate: does `program` still exhibit a strict-mode
/// violation for this `(toolchain, level)` on `input`? Executes through
/// the reference interpreter — a compiler violation is tier-independent,
/// and shrinking must not hinge on the tier under test.
pub fn still_violates(
    program: &Program,
    toolchain: Toolchain,
    level: OptLevel,
    input: &InputSet,
) -> bool {
    let device = device_for(toolchain);
    let reference_ir = compile(program, toolchain, OptLevel::O0, false);
    let Ok(reference) = execute_ir_tier(ExecTier::Interp, &reference_ir, &device, input) else {
        return false;
    };
    let (_, _, traces) = compile_traced(program, toolchain, level, false);
    matches!(
        walk_stages(&traces, &device, input, reference.value.bits(), ExecTier::Interp),
        CheckVerdict::Violation(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::inputs::generate_inputs;
    use progen::Precision;

    #[test]
    fn clean_toolchains_never_violate_strict_mode() {
        for i in 0..15 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 2024, i);
            let inputs = generate_inputs(&p, 2024, 2);
            for o in check_strict(&p, &inputs) {
                assert!(
                    !matches!(o.verdict, CheckVerdict::Violation(_)),
                    "program {i} {} {} input {}: {:?}",
                    o.toolchain,
                    o.level,
                    o.input_index,
                    o.verdict
                );
            }
        }
    }

    #[test]
    fn o0_is_always_consistent() {
        for i in 0..10 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 7, i);
            let inputs = generate_inputs(&p, 7, 2);
            for o in check_strict(&p, &inputs) {
                if o.level == OptLevel::O0 {
                    assert!(
                        matches!(o.verdict, CheckVerdict::Consistent | CheckVerdict::Skipped),
                        "program {i}: {:?}",
                        o.verdict
                    );
                }
            }
        }
    }

    #[test]
    fn explained_divergence_names_a_semantic_pass() {
        let mut explained = 0;
        for i in 0..40 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 17, i);
            let inputs = generate_inputs(&p, 17, 2);
            for o in check_strict(&p, &inputs) {
                if let CheckVerdict::Explained { passes } = &o.verdict {
                    explained += 1;
                    assert!(!passes.is_empty());
                    for pass in passes {
                        assert!(is_semantic(pass), "{pass} is not semantic");
                    }
                }
            }
        }
        // fma-contract at O1+ must explain some strict divergence in a
        // 40-program sample (it is the paper's core mechanism)
        assert!(explained > 0, "no explained divergences in 40 programs");
    }

    #[test]
    fn checks_cover_both_toolchains_and_all_strict_levels() {
        let p = generate_program(&GenConfig::varity_default(Precision::F64), 1, 0);
        let inputs = generate_inputs(&p, 1, 2);
        let outcomes = check_strict(&p, &inputs);
        assert_eq!(outcomes.len(), 2 * STRICT_LEVELS.len() * inputs.len());
    }
}
