//! Ground-truth oracle: self-validation of the double-double reference
//! executor ([`gpucc::refexec`]).
//!
//! Translation validation deliberately has no verdict for fast-math
//! cells — there is no per-toolchain reference semantics once the
//! fast-math bundle may rewrite the kernel. The campaign's answer is the
//! extended-precision truth side, which judges *both* vendors from
//! outside. That makes the truth executor itself part of the trusted
//! base, so the oracle checks the two invariants it must hold by
//! construction:
//!
//! * **availability** — whenever the strict quirkless `O0`
//!   interpretation of a program executes, the reference executor must
//!   too (same fuel accounting, no extra failure modes);
//! * **toolchain invariance** — the truth evaluates real-valued
//!   semantics, so the `O0` lowerings of the same program by *both*
//!   toolchains must produce bit-identical truth. A difference means a
//!   lowering (or the executor) smuggled toolchain-specific rounding
//!   into what claims to be the true value.
//!
//! Bit-differences between the truth and the quirkless interpretation
//! are *expected* (one rounding at the end versus one per operation) and
//! are not checked here; the degenerate case where they must agree is
//! covered by the exact-arithmetic property tests.

use crate::transval::{CheckVerdict, ViolationDetail};
use gpucc::interp::{execute_prepared_budgeted, prepare, ExecBudget};
use gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpucc::refexec::execute_reference_budgeted;
use gpusim::{Device, DeviceKind, QuirkSet};
use progen::ast::Program;
use progen::inputs::InputSet;

/// One ground-truth check result for `(program, input)`.
#[derive(Debug, Clone)]
pub struct TruthOutcome {
    /// Index into the input slice.
    pub input_index: usize,
    /// What the oracle concluded.
    pub verdict: CheckVerdict,
}

/// Run the ground-truth oracle on one program: for every input, the
/// reference executor over both toolchains' `O0` lowerings, checked for
/// availability against the strict quirkless interpretation and for
/// toolchain-invariant truth bits.
pub fn check_truth(program: &Program, inputs: &[InputSet]) -> Vec<TruthOutcome> {
    let nv_ir = compile(program, Toolchain::Nvcc, OptLevel::O0, false);
    let amd_ir = compile(program, Toolchain::Hipcc, OptLevel::O0, false);
    let (Ok(nv_k), Ok(amd_k)) = (prepare(&nv_ir), prepare(&amd_ir)) else {
        // nothing resolved, nothing to validate
        return inputs
            .iter()
            .enumerate()
            .map(|(input_index, _)| TruthOutcome { input_index, verdict: CheckVerdict::Skipped })
            .collect();
    };
    let quirkless = Device::with_quirks(DeviceKind::NvidiaLike, QuirkSet::none());
    let budget = ExecBudget::default();

    inputs
        .iter()
        .enumerate()
        .map(|(input_index, input)| {
            let strict = execute_prepared_budgeted(&nv_k, &quirkless, input, budget);
            let truth_nv = execute_reference_budgeted(&nv_k, input, budget);
            let verdict = match (&strict, &truth_nv) {
                (Err(_), _) => CheckVerdict::Skipped,
                (Ok(_), Err(e)) => CheckVerdict::Violation(ViolationDetail {
                    pass: "truth-exec".into(),
                    expected_bits: strict.as_ref().map(|r| r.value.bits()).unwrap_or(0),
                    actual_bits: 0,
                    detail: format!(
                        "reference executor fails ({e}) though the strict quirkless \
                         O0 interpretation succeeded"
                    ),
                }),
                (Ok(_), Ok(nv)) => match execute_reference_budgeted(&amd_k, input, budget) {
                    Err(e) => CheckVerdict::Violation(ViolationDetail {
                        pass: "truth-exec".into(),
                        expected_bits: nv.value.bits(),
                        actual_bits: 0,
                        detail: format!("reference executor fails on the hipcc O0 lowering ({e})"),
                    }),
                    Ok(amd) if amd.value.bits() != nv.value.bits() => {
                        CheckVerdict::Violation(ViolationDetail {
                            pass: "truth-invariance".into(),
                            expected_bits: nv.value.bits(),
                            actual_bits: amd.value.bits(),
                            detail: "ground truth differs between the nvcc and hipcc O0 \
                                     lowerings of the same program"
                                .into(),
                        })
                    }
                    Ok(_) => CheckVerdict::Consistent,
                },
            };
            TruthOutcome { input_index, verdict }
        })
        .collect()
}

/// Shrinking predicate: does `program` still exhibit a ground-truth
/// violation on `input`?
pub fn still_violates(program: &Program, input: &InputSet) -> bool {
    check_truth(program, std::slice::from_ref(input))
        .iter()
        .any(|o| matches!(o.verdict, CheckVerdict::Violation(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use progen::gen::generate_program;
    use progen::grammar::GenConfig;
    use progen::inputs::generate_inputs;
    use progen::Precision;

    #[test]
    fn healthy_executor_passes_on_the_campaign_population() {
        for i in 0..25 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 2024, i);
            let inputs = generate_inputs(&p, 2024, 2);
            for o in check_truth(&p, &inputs) {
                assert!(
                    matches!(o.verdict, CheckVerdict::Consistent | CheckVerdict::Skipped),
                    "program {i} input {}: {:?}",
                    o.input_index,
                    o.verdict
                );
            }
        }
    }

    #[test]
    fn fp32_truth_is_also_toolchain_invariant() {
        for i in 0..15 {
            let p = generate_program(&GenConfig::varity_default(Precision::F32), 99, i);
            let inputs = generate_inputs(&p, 99, 2);
            for o in check_truth(&p, &inputs) {
                assert!(
                    !matches!(o.verdict, CheckVerdict::Violation(_)),
                    "program {i}: {:?}",
                    o.verdict
                );
            }
        }
    }

    #[test]
    fn outcomes_cover_every_input() {
        let p = generate_program(&GenConfig::varity_default(Precision::F64), 1, 0);
        let inputs = generate_inputs(&p, 1, 3);
        assert_eq!(check_truth(&p, &inputs).len(), 3);
    }
}
