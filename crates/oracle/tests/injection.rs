//! Injected-bug self-tests: the negative half of the oracle's acceptance
//! criteria. Each test arms one deliberately broken pass (gpucc's
//! `oracle-inject` feature, runtime-gated) on a hand-crafted program that
//! exercises exactly that pass, and asserts the translation-validation
//! oracle catches the violation AND attributes it to the correct pass.
//!
//! The injection switch is a process-wide global, so every test
//! serializes through `GATE` and disarms via an RAII guard (panic-safe).
//! This file is its own test binary; the clean-run tests in
//! `tests/oracle.rs` run in a separate process and stay unaffected.

use gpucc::inject::{arm, disarm, InjectedBug};
use gpucc::pipeline::{OptLevel, Toolchain};
use oracle::transval::{check_strict, still_violates, CheckVerdict};
use progen::ast::{AssignOp, BinOp, Expr, LValue, Param, ParamType, Precision, Program, Stmt};
use progen::inputs::{InputSet, InputValue};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

struct Armed;

impl Armed {
    fn new(bug: InjectedBug) -> Armed {
        arm(bug);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

fn with_bug<T>(bug: InjectedBug, f: impl FnOnce() -> T) -> T {
    let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _armed = Armed::new(bug);
    f()
}

fn float_param(name: &str) -> Param {
    Param { name: name.into(), ty: ParamType::Float }
}

/// `comp += 0.1 * 0.2;` — the literal product folds at `O1+`, and the
/// armed const-fold bug rounds the folded f64 through f32. (The `Add` of
/// `comp` and a folded constant never FMA-contracts, so const-fold is the
/// only stage that can change bits here.)
fn const_fold_victim() -> (Program, InputSet) {
    let p = Program {
        id: "inject-const-fold".into(),
        precision: Precision::F64,
        params: vec![float_param("comp"), Param { name: "var_1".into(), ty: ParamType::Int }],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(BinOp::Mul, Expr::Lit(0.1), Expr::Lit(0.2)),
        }],
    };
    let input = InputSet { values: vec![InputValue::Float(1.0), InputValue::Int(4)] };
    (p, input)
}

/// `comp += (var_2 + var_3) * (var_4 + var_5);` — the armed CSE bug keys
/// binaries on the operator alone, so the second `Add` (7) merges into
/// the first (3): after FMA contraction the kernel computes `3*3 + 0 = 9`
/// instead of `3*7 + 0 = 21`.
fn cse_victim() -> (Program, InputSet) {
    let p = Program {
        id: "inject-cse".into(),
        precision: Precision::F64,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
            float_param("var_3"),
            float_param("var_4"),
            float_param("var_5"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Var("var_3".into())),
                Expr::bin(BinOp::Add, Expr::Var("var_4".into()), Expr::Var("var_5".into())),
            ),
        }],
    };
    let input = InputSet {
        values: vec![
            InputValue::Float(0.0),
            InputValue::Int(1),
            InputValue::Float(1.0),
            InputValue::Float(2.0),
            InputValue::Float(3.0),
            InputValue::Float(4.0),
        ],
    };
    (p, input)
}

/// `comp *= -(var_2 + var_3);` — a `Mul` never FMA-contracts, so the
/// negation survives to DCE, where the armed bug forwards its uses to the
/// un-negated operand: `5 * 3 = 15` instead of `5 * -3 = -15`.
fn dce_victim() -> (Program, InputSet) {
    let p = Program {
        id: "inject-dce".into(),
        precision: Precision::F64,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
            float_param("var_3"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::MulAssign,
            value: Expr::Neg(Box::new(Expr::bin(
                BinOp::Add,
                Expr::Var("var_2".into()),
                Expr::Var("var_3".into()),
            ))),
        }],
    };
    let input = InputSet {
        values: vec![
            InputValue::Float(5.0),
            InputValue::Int(1),
            InputValue::Float(1.0),
            InputValue::Float(2.0),
        ],
    };
    (p, input)
}

/// Assert the strict-mode oracle flags the armed bug and attributes every
/// violation to `expected_pass` (and nothing else).
fn assert_caught(program: &Program, input: &InputSet, expected_pass: &str) {
    let outcomes = check_strict(program, std::slice::from_ref(input));
    let mut violations = 0;
    for o in &outcomes {
        match &o.verdict {
            CheckVerdict::Violation(v) => {
                violations += 1;
                assert_eq!(
                    v.pass, expected_pass,
                    "{} {} attributed to `{}`, expected `{expected_pass}`: {}",
                    o.toolchain, o.level, v.pass, v.detail
                );
                assert_ne!(v.expected_bits, v.actual_bits, "{}", v.detail);
            }
            CheckVerdict::Skipped => panic!("reference must execute"),
            _ => {}
        }
    }
    // the bug-triggering pass runs at every optimized strict level on both
    // toolchains: 2 toolchains × {O1, O2, O3}
    assert_eq!(violations, 6, "expected a violation per optimized strict cell");
}

fn assert_clean(program: &Program, input: &InputSet) {
    for o in check_strict(program, std::slice::from_ref(input)) {
        assert!(
            matches!(o.verdict, CheckVerdict::Consistent),
            "{} {}: {:?}",
            o.toolchain,
            o.level,
            o.verdict
        );
    }
}

#[test]
fn const_fold_bug_is_caught_and_attributed() {
    let (p, input) = const_fold_victim();
    with_bug(InjectedBug::ConstFoldF32Round, || assert_caught(&p, &input, "const-fold"));
    assert_clean(&p, &input);
}

#[test]
fn cse_bug_is_caught_and_attributed() {
    let (p, input) = cse_victim();
    with_bug(InjectedBug::CseDegenerateKey, || assert_caught(&p, &input, "cse"));
    assert_clean(&p, &input);
}

#[test]
fn dce_bug_is_caught_and_attributed() {
    let (p, input) = dce_victim();
    with_bug(InjectedBug::DceDropNeg, || assert_caught(&p, &input, "dce"));
    assert_clean(&p, &input);
}

#[test]
fn disarmed_feature_build_is_inert() {
    // compiling with `oracle-inject` must change nothing until a bug is
    // armed — the guarantee that feature unification is harmless
    let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    for (p, input) in [const_fold_victim(), cse_victim(), dce_victim()] {
        assert_clean(&p, &input);
    }
}

#[test]
fn violations_shrink_to_the_offending_statement() {
    // pad the const-fold victim with a statement irrelevant to the bug;
    // difftest::reduce must strip it from the filed finding
    let (mut p, input) = const_fold_victim();
    p.params.push(float_param("var_2"));
    p.body.insert(
        0,
        Stmt::Assign {
            target: LValue::Var("var_2".into()),
            op: AssignOp::MulAssign,
            value: Expr::Lit(2.0),
        },
    );
    let mut input = input;
    input.values.push(InputValue::Float(1.0));

    with_bug(InjectedBug::ConstFoldF32Round, || {
        assert!(still_violates(&p, Toolchain::Nvcc, OptLevel::O1, &input));
        let reduction = difftest::reduce::reduce_program(&p, |candidate| {
            still_violates(candidate, Toolchain::Nvcc, OptLevel::O1, &input)
        });
        assert_eq!(reduction.final_stmts, 1, "padding not removed");
        assert!(still_violates(&reduction.program, Toolchain::Nvcc, OptLevel::O1, &input));
    });
}
