//! Integration tests: the oracle on clean (un-injected) toolchains.
//!
//! These are the positive half of the acceptance criteria: a budgeted run
//! over the campaign's own program population must come back with zero
//! unexplained strict-mode violations, metamorphic coverage of all
//! `{toolchain} × {opt level}` cells, and a report that is identical at
//! any rayon thread count.

use oracle::{run_oracle, OracleConfig};
use progen::Precision;

fn cfg(budget: usize, seed: u64) -> OracleConfig {
    let mut c = OracleConfig::new(Precision::F64, budget, seed);
    c.inputs_per_program = 2;
    c
}

#[test]
fn budget_run_is_clean() {
    let report = run_oracle(&cfg(25, 2024));
    assert!(
        report.is_clean(),
        "unexplained strict-mode violations:\n{}",
        report.violations.iter().map(|f| f.summary_line()).collect::<Vec<_>>().join("\n")
    );
    assert_eq!(report.programs_checked, 25);
}

#[test]
fn fp32_budget_run_is_clean() {
    let mut c = OracleConfig::new(Precision::F32, 10, 2024);
    c.inputs_per_program = 2;
    let report = run_oracle(&c);
    assert!(report.is_clean(), "{:#?}", report.violations);
}

#[test]
fn strict_checks_cover_the_whole_grid() {
    let c = cfg(6, 9);
    let report = run_oracle(&c);
    // 2 toolchains × 4 strict levels × inputs × budget
    assert_eq!(report.transval_checks, (2 * 4 * c.inputs_per_program * c.budget) as u64);
    // one ground-truth check per (program, input)
    assert_eq!(report.truth_checks, (c.inputs_per_program * c.budget) as u64);
    // every program gets exactly one round-trip check
    assert_eq!(report.roundtrip_checks, c.budget as u64);
}

#[test]
fn metamorphic_coverage_spans_all_ten_cells() {
    let report = run_oracle(&cfg(10, 2024));
    assert_eq!(
        report.metamorphic_coverage.len(),
        10,
        "coverage cells: {:?}",
        report.metamorphic_coverage
    );
    for (cell, n) in &report.metamorphic_coverage {
        assert!(*n > 0, "empty cell {cell}");
    }
    // both toolchains, all five levels
    for tc in ["nvcc", "hipcc"] {
        for level in ["O0", "O1", "O2", "O3", "O3_FM"] {
            assert!(
                report.metamorphic_coverage.contains_key(&format!("{tc}:{level}")),
                "missing {tc}:{level}"
            );
        }
    }
}

#[test]
fn report_is_identical_at_one_and_many_threads() {
    let c = cfg(10, 31415);
    let single =
        rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap().install(|| run_oracle(&c));
    let many =
        rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap().install(|| run_oracle(&c));
    assert_eq!(serde_json::to_string(&single).unwrap(), serde_json::to_string(&many).unwrap());
}

#[test]
fn divergences_are_explained_by_semantic_passes_only() {
    let report = run_oracle(&cfg(30, 2024));
    assert!(report.explained > 0, "no explained divergence in 30 programs");
    for pass in report.explained_by_pass.keys() {
        assert!(
            difftest::attribution::SEMANTIC_PASSES.contains(&pass.as_str()),
            "structural pass {pass} explained a divergence"
        );
    }
}
