//! Injected vm-bug self-tests: the negative half of the execution-tier
//! acceptance criteria. The compiled bytecode vm claims bit-identity
//! with the reference interpreter; these tests arm a deliberately broken
//! vm lowering (gpucc's `vm-inject` feature, runtime-gated) and prove
//! the differential tier — and therefore the oracle runner executing
//! through it — catches the miscompile and attributes it to the vm
//! instead of silently corrupting verdicts.
//!
//! The injection switch is a process-wide global, so every test
//! serializes through `GATE` and disarms via an RAII guard (panic-safe).
//! This file is its own test binary; the clean-run tests in
//! `tests/oracle.rs` run in a separate process and stay unaffected.

use gpucc::vm_inject::{arm, disarm, VmBug};
use gpucc::ExecTier;
use oracle::runner::{run_oracle, OracleConfig};
use oracle::transval::check_strict_tier;
use progen::ast::{AssignOp, BinOp, Expr, LValue, Param, ParamType, Precision, Program, Stmt};
use progen::inputs::{InputSet, InputValue};
use progen::Precision as P;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

struct Armed;

impl Armed {
    fn new(bug: VmBug) -> Armed {
        arm(bug);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        disarm();
    }
}

fn with_bug<T>(bug: VmBug, f: impl FnOnce() -> T) -> T {
    let _gate = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _armed = Armed::new(bug);
    f()
}

fn float_param(name: &str) -> Param {
    Param { name: name.into(), ty: ParamType::Float }
}

/// `comp += (var_2 + var_3) * (var_4 + var_5);` — lowers to a
/// multi-instruction bytecode sequence whose result register is not 0,
/// exactly what [`VmBug::RegisterClobber`] rewires.
fn clobber_victim() -> (Program, InputSet) {
    let p = Program {
        id: "vm-inject-clobber".into(),
        precision: Precision::F64,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
            float_param("var_3"),
            float_param("var_4"),
            float_param("var_5"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(
                BinOp::Mul,
                Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Var("var_3".into())),
                Expr::bin(BinOp::Add, Expr::Var("var_4".into()), Expr::Var("var_5".into())),
            ),
        }],
    };
    let input = InputSet {
        values: vec![
            InputValue::Float(0.0),
            InputValue::Int(1),
            InputValue::Float(1.0),
            InputValue::Float(2.0),
            InputValue::Float(3.0),
            InputValue::Float(4.0),
        ],
    };
    (p, input)
}

#[test]
fn differential_tier_panics_on_armed_clobber_and_names_the_vm() {
    let (p, input) = clobber_victim();
    with_bug(VmBug::RegisterClobber, || {
        let caught = std::panic::catch_unwind(|| {
            check_strict_tier(&p, std::slice::from_ref(&input), ExecTier::Differential)
        });
        let payload = match caught {
            Ok(_) => panic!("armed RegisterClobber must not pass the differential tier"),
            Err(p) => p,
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("vm/interp mismatch"),
            "panic must attribute the divergence to the vm tier: {msg:?}"
        );
    });
    // disarmed, the same program sails through the differential tier
    let outcomes = check_strict_tier(&p, std::slice::from_ref(&input), ExecTier::Differential);
    assert!(!outcomes.is_empty());
}

#[test]
fn oracle_runner_reports_armed_clobber_as_contained_faults() {
    let mut config = OracleConfig::new(P::F64, 6, 2024);
    config.inputs_per_program = 2;
    config.exec_tier = ExecTier::Differential;

    let report = with_bug(VmBug::RegisterClobber, || run_oracle(&config));
    assert!(
        report.faulted > 0,
        "a broken vm must surface as contained per-program faults, got {report:#?}"
    );

    // same config, bug disarmed: clean, zero faults — the feature build
    // alone changes nothing
    let clean = run_oracle(&config);
    assert_eq!(clean.faulted, 0);
    assert!(clean.is_clean(), "{:#?}", clean.violations);
    assert_eq!(clean.programs_checked, 6);
}
