//! The abstract syntax of generated test programs.
//!
//! The shapes here mirror what Varity emits (paper Fig. 2/4/6): a single
//! `__global__ void compute(...)` kernel whose first parameter is the
//! accumulator `comp`, followed by an optional `int` loop bound and a mix
//! of scalar and array floating-point parameters. The body is a statement
//! list over arithmetic expressions, math calls, `if` conditions and
//! (nested) `for` loops; the kernel ends by printing `comp` with
//! `printf("%.17g\n", comp)`.

use gpusim::mathlib::MathFunc;
use serde::{Deserialize, Serialize};

/// Floating-point precision of a test program (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// `float` everywhere, `f`-suffixed math functions and literals.
    F32,
    /// `double` everywhere.
    F64,
}

impl Precision {
    /// The C type name.
    pub fn c_type(self) -> &'static str {
        match self {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }

    /// Table-header name used by the paper.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F32 => "FP32",
            Precision::F64 => "FP64",
        }
    }
}

/// Type of a kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamType {
    /// Scalar floating-point value (the program's precision).
    Float,
    /// Integer loop bound.
    Int,
    /// Pointer to a floating-point array (length = loop bound).
    FloatArray,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Source-level name (`comp`, `var_1`, …).
    pub name: String,
    /// Parameter type.
    pub ty: ParamType,
}

/// Binary arithmetic operators allowed by the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Source token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Comparison operators usable in `if` conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Source token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }
}

/// A floating-point expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant. Stored as `f64`; for FP32 programs the emitter
    /// renders it with the `F` suffix and the compiler rounds it to `f32`.
    Lit(f64),
    /// Scalar variable reference (parameter or temporary).
    Var(String),
    /// `array[index_var]` element read.
    Index(String, String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// C math library call.
    Call(MathFunc, Vec<Expr>),
    /// `threadIdx.x` promoted to the kernel precision (SIMT extension:
    /// single-thread Varity kernels never contain it, threaded ones may).
    ThreadIdx,
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Number of AST nodes (used by generation budgets and stats).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Index(..) | Expr::ThreadIdx => 1,
            Expr::Neg(e) => 1 + e.node_count(),
            Expr::Bin(_, l, r) => 1 + l.node_count() + r.node_count(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
        }
    }

    /// All math functions called anywhere in this expression.
    pub fn math_calls(&self, out: &mut Vec<MathFunc>) {
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Index(..) | Expr::ThreadIdx => {}
            Expr::Neg(e) => e.math_calls(out),
            Expr::Bin(_, l, r) => {
                l.math_calls(out);
                r.math_calls(out);
            }
            Expr::Call(f, args) => {
                out.push(*f);
                for a in args {
                    a.math_calls(out);
                }
            }
        }
    }
}

/// A boolean condition (comparison between two float expressions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// Scalar variable (`comp`, `tmp_1`, …).
    Var(String),
    /// `array[index_var]`.
    Index(String, String),
}

/// Compound-assignment operators (paper programs use `=`, `+=`, `-=`,
/// `*=`, `/=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// Source token.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Set => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }
}

/// A statement in the kernel body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `double tmp_N = <expr>;`
    DeclTmp {
        /// Temporary name (`tmp_1`, …).
        name: String,
        /// Initializer.
        init: Expr,
    },
    /// `<lvalue> <op> <expr>;`
    Assign {
        /// Target.
        target: LValue,
        /// Assignment operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if (<cond>) { ... }`
    If {
        /// Condition.
        cond: Cond,
        /// Then-branch body (the grammar emits no `else`).
        body: Vec<Stmt>,
    },
    /// `for (int i = 0; i < <bound_var>; ++i) { ... }`
    For {
        /// Loop induction variable name (`i`, `j`, …).
        var: String,
        /// Name of the `int` parameter bounding the loop.
        bound: String,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

impl Stmt {
    /// Total statements including nested bodies.
    pub fn stmt_count(&self) -> usize {
        match self {
            Stmt::DeclTmp { .. } | Stmt::Assign { .. } => 1,
            Stmt::If { body, .. } | Stmt::For { body, .. } => {
                1 + body.iter().map(Stmt::stmt_count).sum::<usize>()
            }
        }
    }

    /// Maximum loop-nesting depth contributed by this statement.
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::DeclTmp { .. } | Stmt::Assign { .. } => 0,
            Stmt::If { body, .. } => body.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            Stmt::For { body, .. } => 1 + body.iter().map(Stmt::loop_depth).max().unwrap_or(0),
        }
    }
}

/// A complete test program: one `compute` kernel plus metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Stable identifier (`varity_fp64_000123`).
    pub id: String,
    /// Precision of every float in the program.
    pub precision: Precision,
    /// Kernel parameters, in signature order. The first is always the
    /// accumulator `comp`.
    pub params: Vec<Param>,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Names of all parameters of a given type, in signature order.
    pub fn params_of(&self, ty: ParamType) -> impl Iterator<Item = &Param> {
        self.params.iter().filter(move |p| p.ty == ty)
    }

    /// The `int` loop-bound parameter, if the program has loops.
    pub fn int_param(&self) -> Option<&Param> {
        self.params_of(ParamType::Int).next()
    }

    /// Total statements in the kernel.
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::stmt_count).sum()
    }

    /// Maximum loop-nesting depth.
    pub fn loop_depth(&self) -> usize {
        self.body.iter().map(Stmt::loop_depth).max().unwrap_or(0)
    }

    /// Every math function called in the program (with repeats).
    pub fn math_calls(&self) -> Vec<MathFunc> {
        fn walk(stmts: &[Stmt], out: &mut Vec<MathFunc>) {
            for s in stmts {
                match s {
                    Stmt::DeclTmp { init, .. } => init.math_calls(out),
                    Stmt::Assign { value, .. } => value.math_calls(out),
                    Stmt::If { cond, body } => {
                        cond.lhs.math_calls(out);
                        cond.rhs.math_calls(out);
                        walk(body, out);
                    }
                    Stmt::For { body, .. } => walk(body, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// True if any parameter is an array.
    pub fn uses_arrays(&self) -> bool {
        self.params.iter().any(|p| p.ty == ParamType::FloatArray)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        // if (comp >= var_2) { for (i..var_1) { comp += cos(var_3); } }
        Program {
            id: "t0".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
                Param { name: "var_3".into(), ty: ParamType::Float },
            ],
            body: vec![Stmt::If {
                cond: Cond {
                    op: CmpOp::Ge,
                    lhs: Expr::Var("comp".into()),
                    rhs: Expr::Var("var_2".into()),
                },
                body: vec![Stmt::For {
                    var: "i".into(),
                    bound: "var_1".into(),
                    body: vec![Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: Expr::Call(MathFunc::Cos, vec![Expr::Var("var_3".into())]),
                    }],
                }],
            }],
        }
    }

    #[test]
    fn stmt_count_recurses() {
        let p = sample_program();
        assert_eq!(p.stmt_count(), 3); // if + for + assign
    }

    #[test]
    fn loop_depth_counts_nesting() {
        let p = sample_program();
        assert_eq!(p.loop_depth(), 1);
        let nested = Stmt::For {
            var: "i".into(),
            bound: "n".into(),
            body: vec![Stmt::For { var: "j".into(), bound: "n".into(), body: vec![] }],
        };
        assert_eq!(nested.loop_depth(), 2);
    }

    #[test]
    fn math_calls_collected() {
        let p = sample_program();
        assert_eq!(p.math_calls(), vec![MathFunc::Cos]);
    }

    #[test]
    fn int_param_found() {
        let p = sample_program();
        assert_eq!(p.int_param().unwrap().name, "var_1");
        assert!(!p.uses_arrays());
    }

    #[test]
    fn node_count_counts_all() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Neg(Box::new(Expr::Lit(1.0))),
            Expr::Call(MathFunc::Sqrt, vec![Expr::Var("x".into())]),
        );
        assert_eq!(e.node_count(), 5);
    }

    #[test]
    fn precision_labels() {
        assert_eq!(Precision::F32.c_type(), "float");
        assert_eq!(Precision::F64.c_type(), "double");
        assert_eq!(Precision::F32.label(), "FP32");
    }

    #[test]
    fn symbols_are_c_tokens() {
        assert_eq!(BinOp::Div.symbol(), "/");
        assert_eq!(CmpOp::Ge.symbol(), ">=");
        assert_eq!(AssignOp::AddAssign.symbol(), "+=");
    }

    #[test]
    fn program_roundtrips_through_json() {
        let p = sample_program();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
