//! Source emission: render a [`Program`] as compilable CUDA or HIP code.
//!
//! The two dialects share the kernel verbatim (HIP is "a subset of CUDA" —
//! paper §III-D: `__global__` is common) and differ in the host code:
//! headers, the runtime API prefix (`cudaMalloc` vs `hipMalloc`) and the
//! kernel-launch syntax (`compute<<<1,1>>>(…)` vs
//! `hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0, …)`). These are
//! exactly the spots the `hipify` crate rewrites.

use crate::ast::*;
use crate::inputs::ARRAY_LEN;
use fpcore::literal;
use std::fmt::Write as _;

/// Source dialect to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// CUDA (`.cu`), compiled by the simulated nvcc.
    Cuda,
    /// HIP (`.hip`), compiled by the simulated hipcc.
    Hip,
}

impl Dialect {
    /// File extension used for compiler matching (paper §III-D).
    pub fn extension(self) -> &'static str {
        match self {
            Dialect::Cuda => "cu",
            Dialect::Hip => "hip",
        }
    }
}

/// Emit the complete translation unit (kernel + host `main`).
pub fn emit(program: &Program, dialect: Dialect) -> String {
    let mut out = String::with_capacity(2048);
    match dialect {
        Dialect::Cuda => {
            out.push_str("#include <cstdio>\n#include <cstdlib>\n#include <cmath>\n\n");
        }
        Dialect::Hip => {
            out.push_str("#include \"hip/hip_runtime.h\"\n");
            out.push_str("#include <cstdio>\n#include <cstdlib>\n#include <cmath>\n\n");
        }
    }
    out.push_str(&emit_kernel(program));
    out.push('\n');
    out.push_str(&emit_main(program, dialect));
    out
}

/// Emit only the `__global__ void compute(...) { ... }` kernel (identical
/// in both dialects; this is what the parser reads back).
pub fn emit_kernel(program: &Program) -> String {
    let mut out = String::with_capacity(1024);
    let ty = program.precision.c_type();
    out.push_str("__global__ /* __global__ is used for device run */\n");
    out.push_str("void compute(");
    let params: Vec<String> = program
        .params
        .iter()
        .map(|p| match p.ty {
            ParamType::Float => format!("{ty} {}", p.name),
            ParamType::Int => format!("int {}", p.name),
            ParamType::FloatArray => format!("{ty} * {}", p.name),
        })
        .collect();
    out.push_str(&params.join(", "));
    out.push_str(") {\n");
    for s in &program.body {
        emit_stmt(&mut out, s, program.precision, 1);
    }
    out.push_str("  printf(\"%.17g\\n\", comp);\n}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn emit_stmt(out: &mut String, s: &Stmt, prec: Precision, level: usize) {
    match s {
        Stmt::DeclTmp { name, init } => {
            indent(out, level);
            let _ = writeln!(out, "{} {} = {};", prec.c_type(), name, emit_expr(init, prec));
        }
        Stmt::Assign { target, op, value } => {
            indent(out, level);
            let tgt = match target {
                LValue::Var(v) => v.clone(),
                LValue::Index(a, i) => format!("{a}[{i}]"),
            };
            let _ = writeln!(out, "{tgt} {} {};", op.symbol(), emit_expr(value, prec));
        }
        Stmt::If { cond, body } => {
            indent(out, level);
            let _ = writeln!(
                out,
                "if ({} {} {}) {{",
                emit_expr(&cond.lhs, prec),
                cond.op.symbol(),
                emit_expr(&cond.rhs, prec)
            );
            for s in body {
                emit_stmt(out, s, prec, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::For { var, bound, body } => {
            indent(out, level);
            let _ = writeln!(out, "for (int {var} = 0; {var} < {bound}; ++{var}) {{");
            for s in body {
                emit_stmt(out, s, prec, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Render one expression in C syntax, fully parenthesised so the parse is
/// unambiguous and the round trip is exact.
pub fn emit_expr(e: &Expr, prec: Precision) -> String {
    match e {
        Expr::Lit(v) => match prec {
            Precision::F64 => literal::format_varity(*v),
            Precision::F32 => literal::format_varity_f32(*v as f32),
        },
        Expr::Var(v) => v.clone(),
        Expr::Index(a, i) => format!("{a}[{i}]"),
        Expr::Neg(inner) => format!("-({})", emit_expr(inner, prec)),
        Expr::Bin(op, l, r) => {
            format!("({} {} {})", emit_expr(l, prec), op.symbol(), emit_expr(r, prec))
        }
        Expr::Call(f, args) => {
            let name = match prec {
                Precision::F64 => f.c_name().to_string(),
                Precision::F32 => f.c_name_f32(),
            };
            let args: Vec<String> = args.iter().map(|a| emit_expr(a, prec)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::ThreadIdx => format!("(({})threadIdx.x)", prec.c_type()),
    }
}

fn emit_main(program: &Program, dialect: Dialect) -> String {
    let mut out = String::with_capacity(1024);
    let ty = program.precision.c_type();
    let (malloc, memcpy, h2d, sync, free) = match dialect {
        Dialect::Cuda => (
            "cudaMalloc",
            "cudaMemcpy",
            "cudaMemcpyHostToDevice",
            "cudaDeviceSynchronize",
            "cudaFree",
        ),
        Dialect::Hip => {
            ("hipMalloc", "hipMemcpy", "hipMemcpyHostToDevice", "hipDeviceSynchronize", "hipFree")
        }
    };

    out.push_str("int main(int argc, char** argv) {\n");
    let mut launch_args: Vec<String> = Vec::new();
    for (i, p) in program.params.iter().enumerate() {
        let argi = i + 1;
        match p.ty {
            ParamType::Float => {
                let _ = writeln!(out, "  {ty} {} = atof(argv[{argi}]);", p.name);
                launch_args.push(p.name.clone());
            }
            ParamType::Int => {
                let _ = writeln!(out, "  int {} = atoi(argv[{argi}]);", p.name);
                launch_args.push(p.name.clone());
            }
            ParamType::FloatArray => {
                let host = format!("h_{}", p.name);
                let _ = writeln!(out, "  {ty} {host}_fill = atof(argv[{argi}]);");
                let _ = writeln!(out, "  {ty} {host}[{ARRAY_LEN}];");
                let _ = writeln!(
                    out,
                    "  for (int _k = 0; _k < {ARRAY_LEN}; ++_k) {host}[_k] = {host}_fill;"
                );
                let _ = writeln!(out, "  {ty} * {};", p.name);
                let _ =
                    writeln!(out, "  {malloc}((void**)&{}, sizeof({ty}) * {ARRAY_LEN});", p.name);
                let _ = writeln!(
                    out,
                    "  {memcpy}({}, {host}, sizeof({ty}) * {ARRAY_LEN}, {h2d});",
                    p.name
                );
                launch_args.push(p.name.clone());
            }
        }
    }
    match dialect {
        Dialect::Cuda => {
            let _ = writeln!(out, "  compute<<<1, 1>>>({});", launch_args.join(", "));
        }
        Dialect::Hip => {
            let _ = writeln!(
                out,
                "  hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0, {});",
                launch_args.join(", ")
            );
        }
    }
    let _ = writeln!(out, "  {sync}();");
    for p in &program.params {
        if p.ty == ParamType::FloatArray {
            let _ = writeln!(out, "  {free}({});", p.name);
        }
    }
    out.push_str("  return 0;\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_program;
    use crate::grammar::GenConfig;

    fn sample(prec: Precision) -> Program {
        generate_program(&GenConfig::varity_default(prec), 42, 0)
    }

    #[test]
    fn cuda_source_has_cuda_launch() {
        let src = emit(&sample(Precision::F64), Dialect::Cuda);
        assert!(src.contains("compute<<<1, 1>>>("), "{src}");
        assert!(src.contains("cudaDeviceSynchronize();"));
        assert!(!src.contains("hip"));
    }

    #[test]
    fn hip_source_has_hip_launch() {
        let src = emit(&sample(Precision::F64), Dialect::Hip);
        assert!(src.contains("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0,"));
        assert!(src.contains("#include \"hip/hip_runtime.h\""));
        assert!(src.contains("hipDeviceSynchronize();"));
        assert!(!src.contains("<<<"));
        assert!(!src.contains("cuda"));
    }

    #[test]
    fn kernel_is_shared_between_dialects() {
        let p = sample(Precision::F64);
        let cuda = emit(&p, Dialect::Cuda);
        let hip = emit(&p, Dialect::Hip);
        let k = emit_kernel(&p);
        assert!(cuda.contains(&k));
        assert!(hip.contains(&k));
    }

    #[test]
    fn kernel_prints_comp_with_g17() {
        let k = emit_kernel(&sample(Precision::F64));
        assert!(k.contains("printf(\"%.17g\\n\", comp);"));
        assert!(k.starts_with("__global__"));
    }

    #[test]
    fn fp32_kernel_uses_float_and_f_suffixes() {
        let p = sample(Precision::F32);
        let k = emit_kernel(&p);
        assert!(k.contains("void compute(float comp"), "{k}");
        assert!(!k.contains("double"));
        // every literal carries the F suffix
        for f in p.math_calls() {
            assert!(
                k.contains(&format!("{}f(", f.c_name()))
                    || !k.contains(&format!("{}(", f.c_name())),
                "FP64 call {} leaked into FP32 kernel:\n{k}",
                f.c_name()
            );
        }
    }

    #[test]
    fn expr_emission_is_fully_parenthesized() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::Var("a".into()), Expr::Var("b".into())),
            Expr::Lit(1.5),
        );
        assert_eq!(emit_expr(&e, Precision::F64), "((a * b) + +1.5000E0)");
        assert_eq!(emit_expr(&e, Precision::F32), "((a * b) + +1.5000E0F)");
    }

    #[test]
    fn array_params_get_alloc_and_copy() {
        let mut cfg = GenConfig::varity_default(Precision::F64);
        cfg.num_array_params = 2;
        let p = generate_program(&cfg, 1, 0);
        let cuda = emit(&p, Dialect::Cuda);
        assert_eq!(cuda.matches("cudaMalloc").count(), 2);
        assert_eq!(cuda.matches("cudaMemcpyHostToDevice").count(), 2);
        assert_eq!(cuda.matches("cudaFree").count(), 2);
        let hip = emit(&p, Dialect::Hip);
        assert_eq!(hip.matches("hipMalloc").count(), 2);
    }

    #[test]
    fn dialect_extensions_match_compiler_matching_rules() {
        assert_eq!(Dialect::Cuda.extension(), "cu");
        assert_eq!(Dialect::Hip.extension(), "hip");
    }

    #[test]
    fn emitted_source_resembles_fig2_structure() {
        // sanity: kernel contains the constructs of Table III
        let mut found_loop = false;
        let mut found_if = false;
        for i in 0..50 {
            let p = generate_program(&GenConfig::varity_default(Precision::F64), 3, i);
            let k = emit_kernel(&p);
            found_loop |= k.contains("for (int i = 0; i < var_1; ++i) {");
            found_if |= k.contains("if (");
        }
        assert!(found_loop, "no loops in 50 programs");
        assert!(found_if, "no ifs in 50 programs");
    }
}
