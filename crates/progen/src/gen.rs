//! The random program generator (the Varity core).
//!
//! Given a [`GenConfig`] and a seed, [`generate_program`] draws one test
//! program from the grammar. Generation is fully deterministic in
//! `(config, seed, index)` — the property the between-platform protocol
//! (paper Fig. 3) relies on: platform `C2` regenerates bit-identical tests
//! from the metadata produced on `C1`.

use crate::ast::*;
use crate::grammar::GenConfig;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministically generate the `index`-th program of a campaign.
///
/// ```
/// use progen::gen::generate_program;
/// use progen::grammar::GenConfig;
/// use progen::Precision;
///
/// let cfg = GenConfig::varity_default(Precision::F64);
/// let a = generate_program(&cfg, 42, 7);
/// let b = generate_program(&cfg, 42, 7);
/// assert_eq!(a, b, "same seed + index => identical program");
/// assert_eq!(a.id, "varity_fp64_000007");
/// ```
pub fn generate_program(cfg: &GenConfig, seed: u64, index: u64) -> Program {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index);
    let mut gen = Generator::new(cfg, &mut rng);
    let p = gen.program(index);
    if obs::enabled() {
        obs::add("progen.programs", 1);
        obs::record("progen.ast_stmts", p.stmt_count() as u64);
    }
    p
}

/// Generate a batch of programs with consecutive indices.
pub fn generate_batch(cfg: &GenConfig, seed: u64, count: usize) -> Vec<Program> {
    (0..count as u64).map(|i| generate_program(cfg, seed, i)).collect()
}

struct Generator<'a, R: Rng> {
    cfg: &'a GenConfig,
    rng: &'a mut R,
    /// Scalars readable at the current point (params + declared temps).
    floats: Vec<String>,
    arrays: Vec<String>,
    loop_vars: Vec<String>,
    tmp_counter: usize,
}

impl<'a, R: Rng> Generator<'a, R> {
    fn new(cfg: &'a GenConfig, rng: &'a mut R) -> Self {
        Generator {
            cfg,
            rng,
            floats: Vec::new(),
            arrays: Vec::new(),
            loop_vars: Vec::new(),
            tmp_counter: 0,
        }
    }

    fn program(&mut self, index: u64) -> Program {
        let mut params = vec![Param { name: "comp".into(), ty: ParamType::Float }];
        params.push(Param { name: "var_1".into(), ty: ParamType::Int });
        let mut next_var = 2usize;
        for _ in 0..self.cfg.num_float_params {
            params.push(Param { name: format!("var_{next_var}"), ty: ParamType::Float });
            next_var += 1;
        }
        for _ in 0..self.cfg.num_array_params {
            params.push(Param { name: format!("var_{next_var}"), ty: ParamType::FloatArray });
            next_var += 1;
        }

        self.floats =
            params.iter().filter(|p| p.ty == ParamType::Float).map(|p| p.name.clone()).collect();
        self.arrays = params
            .iter()
            .filter(|p| p.ty == ParamType::FloatArray)
            .map(|p| p.name.clone())
            .collect();

        let n_stmts = self.rng.gen_range(2..=self.cfg.max_stmts.max(2));
        let mut body = Vec::with_capacity(n_stmts);
        for i in 0..n_stmts {
            // bias the first statement toward a temporary declaration, the
            // way the paper's samples open (Fig. 4/6)
            let s = if i == 0 && self.rng.gen_bool(0.5) {
                self.decl_tmp()
            } else {
                self.stmt(self.cfg.max_loop_nesting, 3)
            };
            body.push(s);
        }
        // guarantee comp is written at least once at the top level
        if !body.iter().any(writes_comp) {
            body.push(self.comp_assign());
        }

        let prefix = match self.cfg.precision {
            Precision::F32 => "fp32",
            Precision::F64 => "fp64",
        };
        Program {
            id: format!("varity_{prefix}_{index:06}"),
            precision: self.cfg.precision,
            params,
            body,
        }
    }

    /// `nest_budget` bounds *block* nesting (if + for combined): without
    /// it the statement grammar is a supercritical branching process
    /// (expected offspring > 1) and program sizes explode, where Varity's
    /// tests are deliberately short.
    fn stmt(&mut self, loop_budget: usize, nest_budget: usize) -> Stmt {
        let r: f64 = self.rng.gen();
        if nest_budget > 0 && loop_budget > 0 && r < self.cfg.loop_prob {
            self.for_loop(loop_budget, nest_budget)
        } else if nest_budget > 0 && r < self.cfg.loop_prob + self.cfg.if_prob {
            self.if_block(loop_budget, nest_budget)
        } else if self.rng.gen_bool(0.2) {
            self.decl_tmp()
        } else {
            self.comp_assign()
        }
    }

    fn decl_tmp(&mut self) -> Stmt {
        self.tmp_counter += 1;
        let name = format!("tmp_{}", self.tmp_counter);
        let init = self.expr(self.cfg.max_expr_depth);
        self.floats.push(name.clone());
        Stmt::DeclTmp { name, init }
    }

    fn comp_assign(&mut self) -> Stmt {
        let op = *[
            AssignOp::AddAssign,
            AssignOp::AddAssign,
            AssignOp::SubAssign,
            AssignOp::MulAssign,
            AssignOp::DivAssign,
        ]
        .choose(self.rng)
        .expect("non-empty");
        Stmt::Assign {
            target: LValue::Var("comp".into()),
            op,
            value: self.expr(self.cfg.max_expr_depth),
        }
    }

    fn array_assign(&mut self) -> Option<Stmt> {
        let arr = self.arrays.choose(self.rng)?.clone();
        let idx = self.loop_vars.last()?.clone();
        Some(Stmt::Assign {
            target: LValue::Index(arr, idx),
            op: AssignOp::Set,
            value: self.expr(self.cfg.max_expr_depth),
        })
    }

    fn if_block(&mut self, loop_budget: usize, nest_budget: usize) -> Stmt {
        let cond = Cond {
            op: *[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne]
                .choose(self.rng)
                .expect("non-empty"),
            lhs: if self.rng.gen_bool(0.7) { Expr::Var("comp".into()) } else { self.expr(2) },
            rhs: self.expr(2),
        };
        let scope = self.floats.len();
        let n = self.rng.gen_range(1..=2);
        let body = (0..n).map(|_| self.stmt(loop_budget, nest_budget - 1)).collect();
        // temporaries declared inside the block are block-scoped in C
        self.floats.truncate(scope);
        Stmt::If { cond, body }
    }

    fn for_loop(&mut self, loop_budget: usize, nest_budget: usize) -> Stmt {
        let var = ["i", "j", "k", "l"][self.loop_vars.len().min(3)].to_string();
        self.loop_vars.push(var.clone());
        let scope = self.floats.len();
        let n = self.rng.gen_range(1..=3);
        let mut body: Vec<Stmt> = Vec::with_capacity(n);
        for _ in 0..n {
            // inside loops, array writes become possible
            if !self.arrays.is_empty() && self.rng.gen_bool(0.3) {
                if let Some(s) = self.array_assign() {
                    body.push(s);
                    continue;
                }
            }
            body.push(self.stmt(loop_budget - 1, nest_budget - 1));
        }
        // make sure the loop touches comp so iterations matter
        if !body.iter().any(writes_comp) {
            body.push(self.comp_assign());
        }
        self.loop_vars.pop();
        self.floats.truncate(scope); // block-scoped temporaries
        Stmt::For { var, bound: "var_1".into(), body }
    }

    fn expr(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        let r: f64 = self.rng.gen();
        if r < self.cfg.call_prob && !self.cfg.allowed_funcs.is_empty() {
            let f = *self.cfg.allowed_funcs.choose(self.rng).expect("non-empty");
            let args = (0..f.arity()).map(|_| self.expr(depth - 1)).collect();
            Expr::Call(f, args)
        } else if r < self.cfg.call_prob + 0.08 {
            // normalize Neg(Lit) to a signed literal: C has no way to
            // distinguish them, so the parser folds and we must match
            match self.expr(depth - 1) {
                Expr::Lit(v) => Expr::Lit(-v),
                inner => Expr::Neg(Box::new(inner)),
            }
        } else {
            let op = *[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div]
                .choose(self.rng)
                .expect("non-empty");
            Expr::bin(op, self.expr(depth - 1), self.expr(depth - 1))
        }
    }

    fn leaf(&mut self) -> Expr {
        if self.cfg.threaded && self.rng.gen_bool(0.12) {
            return Expr::ThreadIdx;
        }
        // array reads only make sense under a loop index
        if !self.arrays.is_empty() && !self.loop_vars.is_empty() && self.rng.gen_bool(0.15) {
            let arr = self.arrays.choose(self.rng).expect("non-empty").clone();
            let idx = self.loop_vars.last().expect("in loop").clone();
            return Expr::Index(arr, idx);
        }
        if self.rng.gen_bool(self.cfg.lit_prob) || self.floats.is_empty() {
            Expr::Lit(self.literal())
        } else {
            Expr::Var(self.floats.choose(self.rng).expect("non-empty").clone())
        }
    }

    /// A Varity-style literal: `±d.ddddE±xx`, biased toward the extreme
    /// exponent ranges that stress overflow/underflow boundaries.
    fn literal(&mut self) -> f64 {
        let mant: f64 = self.rng.gen_range(1.0..10.0);
        let exp = self.exponent_class();
        let negative = self.rng.gen_bool(0.5);
        crate::inputs::compose_float(negative, mant, exp, self.cfg.precision)
    }

    fn exponent_class(&mut self) -> i32 {
        let (huge, tiny) = match self.cfg.precision {
            Precision::F64 => (300..=307, -322..=-300),
            Precision::F32 => (30..=38, -45..=-35),
        };
        let moderate = match self.cfg.precision {
            Precision::F64 => -20..=20,
            Precision::F32 => -8..=8,
        };
        let mid = match self.cfg.precision {
            Precision::F64 => 100..=250,
            Precision::F32 => 10..=25,
        };
        // FP32 literals lean moderate for the same saturation reason the
        // inputs do (see progen::inputs::random_float)
        let (p_huge, p_tiny) = match self.cfg.precision {
            Precision::F64 => (30, 20),
            Precision::F32 => (18, 12),
        };
        let roll = self.rng.gen_range(0..100);
        if roll < p_huge {
            self.rng.gen_range(huge)
        } else if roll < p_huge + p_tiny {
            self.rng.gen_range(tiny)
        } else if roll < p_huge + p_tiny + 30 {
            self.rng.gen_range(moderate)
        } else if roll < p_huge + p_tiny + 45 {
            self.rng.gen_range(mid)
        } else {
            let m = *moderate.end();
            -self.rng.gen_range(2..=m.max(3))
        }
    }
}

fn writes_comp(s: &Stmt) -> bool {
    match s {
        Stmt::Assign { target: LValue::Var(v), .. } => v == "comp",
        Stmt::Assign { .. } | Stmt::DeclTmp { .. } => false,
        Stmt::If { body, .. } | Stmt::For { body, .. } => body.iter().any(writes_comp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GenConfig;
    use gpusim::mathlib::MathFunc;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let a = generate_program(&cfg, 42, 7);
        let b = generate_program(&cfg, 42, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_indices_give_different_programs() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let a = generate_program(&cfg, 42, 0);
        let b = generate_program(&cfg, 42, 1);
        assert_ne!(a.body, b.body);
        assert_eq!(a.id, "varity_fp64_000000");
        assert_eq!(b.id, "varity_fp64_000001");
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let a = generate_program(&cfg, 1, 0);
        let b = generate_program(&cfg, 2, 0);
        assert_ne!(a.body, b.body);
    }

    #[test]
    fn every_program_writes_comp() {
        let cfg = GenConfig::varity_default(Precision::F64);
        for i in 0..200 {
            let p = generate_program(&cfg, 9, i);
            assert!(p.body.iter().any(writes_comp), "program {i} never writes comp");
        }
    }

    #[test]
    fn loop_nesting_respects_config() {
        let cfg = GenConfig::varity_default(Precision::F64);
        for i in 0..200 {
            let p = generate_program(&cfg, 5, i);
            assert!(
                p.loop_depth() <= cfg.max_loop_nesting,
                "program {i} nests {} deep",
                p.loop_depth()
            );
        }
    }

    #[test]
    fn params_have_expected_shape() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, 3, 0);
        assert_eq!(p.params[0].name, "comp");
        assert_eq!(p.params[0].ty, ParamType::Float);
        assert_eq!(p.params[1].ty, ParamType::Int);
        assert_eq!(p.params_of(ParamType::Float).count(), cfg.num_float_params + 1);
        assert_eq!(p.params_of(ParamType::FloatArray).count(), cfg.num_array_params);
    }

    #[test]
    fn fp32_literals_are_f32_representable() {
        let cfg = GenConfig::varity_default(Precision::F32);
        for i in 0..50 {
            let p = generate_program(&cfg, 11, i);
            check_lits(&p.body);
        }
        fn check_lits(stmts: &[Stmt]) {
            for s in stmts {
                match s {
                    Stmt::DeclTmp { init, .. } => check_expr(init),
                    Stmt::Assign { value, .. } => check_expr(value),
                    Stmt::If { cond, body } => {
                        check_expr(&cond.lhs);
                        check_expr(&cond.rhs);
                        check_lits(body);
                    }
                    Stmt::For { body, .. } => check_lits(body),
                }
            }
        }
        fn check_expr(e: &Expr) {
            match e {
                Expr::Lit(v) => assert_eq!(*v, *v as f32 as f64, "literal {v} not f32-exact"),
                Expr::Neg(e) => check_expr(e),
                Expr::Bin(_, l, r) => {
                    check_expr(l);
                    check_expr(r);
                }
                Expr::Call(_, args) => args.iter().for_each(check_expr),
                _ => {}
            }
        }
    }

    #[test]
    fn math_functions_come_from_allowlist() {
        let mut cfg = GenConfig::varity_default(Precision::F64);
        cfg.allowed_funcs = vec![MathFunc::Sqrt];
        for i in 0..50 {
            let p = generate_program(&cfg, 13, i);
            for f in p.math_calls() {
                assert_eq!(f, MathFunc::Sqrt);
            }
        }
    }

    #[test]
    fn batch_indices_are_consecutive() {
        let cfg = GenConfig::tiny(Precision::F64);
        let batch = generate_batch(&cfg, 1, 5);
        assert_eq!(batch.len(), 5);
        for (i, p) in batch.iter().enumerate() {
            assert_eq!(p.id, format!("varity_fp64_{i:06}"));
        }
    }

    #[test]
    fn programs_exercise_grammar_features_in_aggregate() {
        let cfg = GenConfig::varity_default(Precision::F64);
        let batch = generate_batch(&cfg, 77, 300);
        let with_loops = batch.iter().filter(|p| p.loop_depth() > 0).count();
        let with_ifs = batch
            .iter()
            .filter(|p| {
                fn has_if(stmts: &[Stmt]) -> bool {
                    stmts.iter().any(|s| match s {
                        Stmt::If { .. } => true,
                        Stmt::For { body, .. } => has_if(body),
                        _ => false,
                    })
                }
                has_if(&p.body)
            })
            .count();
        let with_calls = batch.iter().filter(|p| !p.math_calls().is_empty()).count();
        assert!(with_loops > 100, "loops: {with_loops}/300");
        assert!(with_ifs > 50, "ifs: {with_ifs}/300");
        assert!(with_calls > 150, "calls: {with_calls}/300");
    }
}
