//! Generation configuration: the knobs of the random-program grammar.
//!
//! Varity's grammar (paper Table III) is parameterised by the number of
//! variables, expression depth, loop-nesting level `N`, and which math
//! functions may appear. [`GenConfig`] captures those knobs plus the
//! probabilities used when the generator walks the grammar.

use crate::ast::Precision;
use gpusim::mathlib::MathFunc;
use serde::{Deserialize, Serialize};

/// Configuration for random program generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenConfig {
    /// Precision of every float in the generated programs.
    pub precision: Precision,
    /// Number of scalar floating-point parameters (besides `comp`).
    pub num_float_params: usize,
    /// Number of array parameters.
    pub num_array_params: usize,
    /// Maximum expression depth.
    pub max_expr_depth: usize,
    /// Number of top-level statements (before nesting).
    pub max_stmts: usize,
    /// Maximum `for`-loop nesting (`N` in Table III).
    pub max_loop_nesting: usize,
    /// Probability that a statement position becomes an `if` block.
    pub if_prob: f64,
    /// Probability that a statement position becomes a `for` loop.
    pub loop_prob: f64,
    /// Probability that an expression node is a math call (vs arithmetic).
    pub call_prob: f64,
    /// Probability that a leaf is a literal (vs variable reference).
    pub lit_prob: f64,
    /// Math functions the generator may emit.
    pub allowed_funcs: Vec<MathFunc>,
    /// SIMT extension: when true, expression leaves may be `threadIdx.x`,
    /// making the kernel's result thread-dependent (run it with
    /// `gpucc::interp::execute_grid`). Paper-faithful campaigns keep this
    /// off — Varity kernels are single-thread.
    pub threaded: bool,
}

impl GenConfig {
    /// Varity-like defaults for a given precision: ~8 float parameters,
    /// depth-3 expressions, up to two nested loops, the math functions
    /// seen in the paper's case studies.
    pub fn varity_default(precision: Precision) -> Self {
        GenConfig {
            precision,
            num_float_params: 8,
            num_array_params: 1,
            max_expr_depth: 3,
            max_stmts: 5,
            max_loop_nesting: 2,
            if_prob: 0.3,
            loop_prob: 0.35,
            call_prob: 0.28,
            lit_prob: 0.45,
            allowed_funcs: vec![
                MathFunc::Sin,
                MathFunc::Cos,
                MathFunc::Tan,
                MathFunc::Asin,
                MathFunc::Acos,
                MathFunc::Atan,
                MathFunc::Sinh,
                MathFunc::Cosh,
                MathFunc::Tanh,
                MathFunc::Exp,
                MathFunc::Log,
                MathFunc::Log10,
                MathFunc::Sqrt,
                MathFunc::Fabs,
                MathFunc::Floor,
                MathFunc::Ceil,
                MathFunc::Fmod,
                MathFunc::Pow,
                MathFunc::Fmin,
                MathFunc::Fmax,
            ],
            threaded: false,
        }
    }

    /// The extended function surface: everything the vendor libraries
    /// implement, including the special functions (`erf`, `tgamma`,
    /// `expm1`, `log1p`, inverse hyperbolics, `rsqrt`). The paper's
    /// campaigns use [`GenConfig::varity_default`]; this preset exists to
    /// stress the wider library surface.
    pub fn extended(precision: Precision) -> Self {
        GenConfig {
            allowed_funcs: gpusim::mathlib::MathFunc::ALL.to_vec(),
            ..GenConfig::varity_default(precision)
        }
    }

    /// A small configuration for fast unit tests.
    pub fn tiny(precision: Precision) -> Self {
        GenConfig {
            num_float_params: 3,
            num_array_params: 0,
            max_expr_depth: 2,
            max_stmts: 3,
            max_loop_nesting: 1,
            ..GenConfig::varity_default(precision)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GenConfig::varity_default(Precision::F64);
        assert!(c.num_float_params >= 4);
        assert!(c.max_loop_nesting >= 1);
        assert!(!c.allowed_funcs.is_empty());
        assert!(c.if_prob + c.loop_prob < 1.0);
        assert!(c.allowed_funcs.contains(&MathFunc::Fmod));
        assert!(c.allowed_funcs.contains(&MathFunc::Ceil));
    }

    #[test]
    fn extended_covers_every_function() {
        let e = GenConfig::extended(Precision::F64);
        assert_eq!(e.allowed_funcs.len(), MathFunc::ALL.len());
        assert!(e.allowed_funcs.contains(&MathFunc::Erf));
        assert!(e.allowed_funcs.contains(&MathFunc::Tgamma));
        assert!(e.allowed_funcs.contains(&MathFunc::Rsqrt));
    }

    #[test]
    fn tiny_is_smaller() {
        let t = GenConfig::tiny(Precision::F32);
        let d = GenConfig::varity_default(Precision::F32);
        assert!(t.num_float_params < d.num_float_params);
        assert!(t.max_stmts <= d.max_stmts);
        assert_eq!(t.precision, Precision::F32);
    }
}
