//! Random input generation.
//!
//! Varity pairs every generated program with random numerical inputs drawn
//! from the "interesting" regions of the floating-point line: values near
//! the overflow boundary, near/below the underflow boundary (including
//! subnormals), signed zeros, and moderate values. The failure-inducing
//! inputs shown in the paper (e.g. `-0.0 5 +0.0 +1.2150E-306 +1.2318E224
//! +1.8418E306 …`) come from exactly this mix.

use crate::ast::{ParamType, Precision, Program};
use fpcore::literal;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Length of array parameters allocated by the generated `main()`.
pub const ARRAY_LEN: usize = 16;

/// A single input value for one kernel parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputValue {
    /// Scalar float input.
    Float(f64),
    /// Integer loop bound.
    Int(i64),
    /// Fill value for an array parameter (the array is initialized to it).
    ArrayFill(f64),
}

impl InputValue {
    /// Render the value the way Varity's input files do.
    pub fn render(&self, precision: Precision) -> String {
        match self {
            InputValue::Int(v) => v.to_string(),
            InputValue::Float(v) | InputValue::ArrayFill(v) => match precision {
                Precision::F64 => literal::format_varity(*v),
                Precision::F32 => literal::format_varity(*v as f32 as f64),
            },
        }
    }
}

/// One complete input vector for a program (values in parameter order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSet {
    /// Values aligned with `Program::params`.
    pub values: Vec<InputValue>,
}

impl InputSet {
    /// Render as a single space-separated line (the paper's input format).
    pub fn render(&self, precision: Precision) -> String {
        self.values.iter().map(|v| v.render(precision)).collect::<Vec<_>>().join(" ")
    }

    /// The loop-bound value (first `Int` input), if present.
    pub fn loop_bound(&self) -> Option<i64> {
        self.values.iter().find_map(|v| match v {
            InputValue::Int(n) => Some(*n),
            _ => None,
        })
    }
}

/// Deterministically generate the `k`-th input set for a program.
pub fn generate_input(program: &Program, seed: u64, k: u64) -> InputSet {
    let mut rng = ChaCha8Rng::seed_from_u64(
        seed.wrapping_mul(0xD134_2543_DE82_EF95)
            ^ hash_id(&program.id)
            ^ k.wrapping_mul(0xFF51_AFD7_ED55_8CCD),
    );
    let values = program
        .params
        .iter()
        .map(|p| match p.ty {
            ParamType::Int => InputValue::Int(rng.gen_range(1..=8)),
            ParamType::Float => InputValue::Float(random_float(&mut rng, program.precision)),
            ParamType::FloatArray => {
                InputValue::ArrayFill(random_float(&mut rng, program.precision))
            }
        })
        .collect();
    InputSet { values }
}

/// Generate `n` input sets for a program.
pub fn generate_inputs(program: &Program, seed: u64, n: usize) -> Vec<InputSet> {
    obs::add("progen.inputs", n as u64);
    (0..n as u64).map(|k| generate_input(program, seed, k)).collect()
}

fn hash_id(id: &str) -> u64 {
    // FNV-1a: stable across runs (std's DefaultHasher is not guaranteed)
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Build the float value of `±m.mmmm × 10^exp` by going through the
/// decimal string, which converts correctly even deep in the subnormal
/// range (computing `mant * 10.powi(exp)` would underflow through `1/Inf`).
pub(crate) fn compose_float(negative: bool, mant: f64, exp: i32, precision: Precision) -> f64 {
    let sign = if negative { "-" } else { "+" };
    let v = literal::parse_literal(&format!("{sign}{mant:.4}E{exp}")).unwrap_or(0.0);
    match precision {
        Precision::F64 => v,
        Precision::F32 => {
            let f = v as f32;
            if f.is_infinite() {
                // a 4-digit decimal just above f32::MAX: clamp back in range
                fpcore::bits::copysign_bits_f32(3.4028e38, f) as f64
            } else {
                f as f64
            }
        }
    }
}

/// Draw one float from the special-value-biased distribution.
fn random_float<R: Rng>(rng: &mut R, precision: Precision) -> f64 {
    let class = rng.gen_range(0..100);
    let negative = rng.gen_bool(0.5);
    let mant: f64 = rng.gen_range(1.0..10.0);
    let exp = match precision {
        Precision::F64 => match class {
            // signed zero
            0..=9 => return if negative { -0.0 } else { 0.0 },
            // subnormal range
            10..=19 => rng.gen_range(-322..=-309),
            // near underflow (smallest normals)
            20..=29 => rng.gen_range(-308..=-300),
            // near overflow
            35..=54 => rng.gen_range(300..=307),
            // large mid-range
            55..=64 => rng.gen_range(100..=250),
            // moderate (large enough a share that last-ULP compiler
            // effects survive to the output instead of saturating)
            _ => rng.gen_range(-20..=20),
        },
        // FP32 leans toward moderate magnitudes: the narrow exponent range
        // means extreme values saturate to Inf/0 within an operation or
        // two, and saturated results absorb the fast-intrinsic divergence
        // the FP32 campaign exists to expose (paper Table IX)
        Precision::F32 => match class {
            0..=7 => return if negative { -0.0 } else { 0.0 },
            8..=15 => rng.gen_range(-45..=-39),
            16..=25 => rng.gen_range(-38..=-30),
            26..=40 => rng.gen_range(30..=38),
            41..=55 => rng.gen_range(10..=29),
            _ => rng.gen_range(-9..=9),
        },
    };
    compose_float(negative, mant, exp, precision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_program;
    use crate::grammar::GenConfig;
    use fpcore::classify::FpClass;

    fn sample() -> Program {
        generate_program(&GenConfig::varity_default(Precision::F64), 42, 0)
    }

    #[test]
    fn inputs_are_deterministic() {
        let p = sample();
        assert_eq!(generate_input(&p, 7, 3), generate_input(&p, 7, 3));
        assert_ne!(generate_input(&p, 7, 3), generate_input(&p, 7, 4));
        assert_ne!(generate_input(&p, 7, 3), generate_input(&p, 8, 3));
    }

    #[test]
    fn inputs_align_with_params() {
        let p = sample();
        let inp = generate_input(&p, 1, 0);
        assert_eq!(inp.values.len(), p.params.len());
        for (param, value) in p.params.iter().zip(&inp.values) {
            match param.ty {
                ParamType::Int => assert!(matches!(value, InputValue::Int(_))),
                ParamType::Float => assert!(matches!(value, InputValue::Float(_))),
                ParamType::FloatArray => assert!(matches!(value, InputValue::ArrayFill(_))),
            }
        }
    }

    #[test]
    fn loop_bounds_are_small_positive() {
        let p = sample();
        for k in 0..50 {
            let b = generate_input(&p, 3, k).loop_bound().unwrap();
            assert!((1..=8).contains(&b), "bound {b}");
        }
    }

    #[test]
    fn distribution_hits_all_classes() {
        let p = sample();
        let mut zeros = 0;
        let mut subnormals = 0;
        let mut huge = 0;
        let mut moderate = 0;
        for k in 0..500 {
            let inp = generate_input(&p, 11, k);
            for v in &inp.values {
                if let InputValue::Float(x) = v {
                    match FpClass::of_f64(*x) {
                        FpClass::Zero => zeros += 1,
                        FpClass::Subnormal => subnormals += 1,
                        FpClass::Normal if x.abs() >= 1e300 => huge += 1,
                        FpClass::Normal if x.abs() <= 1e20 && x.abs() >= 1e-20 => moderate += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(zeros > 50, "zeros: {zeros}");
        assert!(subnormals > 50, "subnormals: {subnormals}");
        assert!(huge > 200, "huge: {huge}");
        assert!(moderate > 100, "moderate: {moderate}");
    }

    #[test]
    fn fp32_inputs_are_f32_exact() {
        let cfg = GenConfig::varity_default(Precision::F32);
        let p = generate_program(&cfg, 5, 0);
        for k in 0..100 {
            let inp = generate_input(&p, 2, k);
            for v in &inp.values {
                if let InputValue::Float(x) | InputValue::ArrayFill(x) = v {
                    assert_eq!(*x, *x as f32 as f64, "input {x} not f32-exact");
                }
            }
        }
    }

    #[test]
    fn render_matches_varity_format() {
        let p = sample();
        let line = generate_input(&p, 1, 0).render(Precision::F64);
        // one token per parameter, each parseable
        let tokens: Vec<&str> = line.split(' ').collect();
        assert_eq!(tokens.len(), p.params.len());
        for t in tokens {
            assert!(literal::parse_literal(t).is_some(), "unparseable token {t:?} in {line:?}");
        }
    }

    #[test]
    fn rendered_inputs_roundtrip_exactly() {
        let p = sample();
        for k in 0..50 {
            let inp = generate_input(&p, 9, k);
            for v in &inp.values {
                if let InputValue::Float(x) = v {
                    let rendered = v.render(Precision::F64);
                    let back = literal::parse_literal(&rendered).unwrap();
                    assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {rendered} -> {back}");
                }
            }
        }
    }
}
