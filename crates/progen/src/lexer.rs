//! Tokenizer for the emitted CUDA/HIP kernel subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`compute`, `double`, `for`, `__global__`, …).
    Ident(String),
    /// Unsigned floating-point literal; `true` if it carried an `f`/`F`
    /// suffix (FP32).
    Float(f64, bool),
    /// Unsigned integer literal.
    Int(i64),
    /// A string literal (contents unescaped are not needed; kept verbatim).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `++`
    PlusPlus,
    /// `&`
    Amp,
    /// `.` (member access, e.g. `threadIdx.x`)
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Float(v, suf) => write!(f, "{v}{}", if *suf { "F" } else { "" }),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            other => {
                let s = match other {
                    Token::LParen => "(",
                    Token::RParen => ")",
                    Token::LBrace => "{",
                    Token::RBrace => "}",
                    Token::LBracket => "[",
                    Token::RBracket => "]",
                    Token::Comma => ",",
                    Token::Semi => ";",
                    Token::Plus => "+",
                    Token::Minus => "-",
                    Token::Star => "*",
                    Token::Slash => "/",
                    Token::Lt => "<",
                    Token::Le => "<=",
                    Token::Gt => ">",
                    Token::Ge => ">=",
                    Token::EqEq => "==",
                    Token::Ne => "!=",
                    Token::Assign => "=",
                    Token::PlusAssign => "+=",
                    Token::MinusAssign => "-=",
                    Token::StarAssign => "*=",
                    Token::SlashAssign => "/=",
                    Token::PlusPlus => "++",
                    Token::Amp => "&",
                    Token::Dot => ".",
                    _ => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A lexing error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize source text. Preprocessor lines (`#include …`) and comments
/// (`/* */`, `//`) are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '#' => {
                // preprocessor directive: skip to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            s.push(bytes[i] as char);
                            s.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            '.' if i + 1 >= bytes.len() || !bytes[i + 1].is_ascii_digit() => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '0'..='9' | '.' => {
                let (tok, next) = lex_number(src, i)?;
                tokens.push(tok);
                i = next;
            }
            _ => {
                // UTF-8 safe lookahead: `get` returns None when i+2 falls
                // inside a multi-byte character
                let two = src.get(i..i + 2).unwrap_or("");
                let (tok, len) = match two {
                    "<=" => (Token::Le, 2),
                    ">=" => (Token::Ge, 2),
                    "==" => (Token::EqEq, 2),
                    "!=" => (Token::Ne, 2),
                    "+=" => (Token::PlusAssign, 2),
                    "-=" => (Token::MinusAssign, 2),
                    "*=" => (Token::StarAssign, 2),
                    "/=" => (Token::SlashAssign, 2),
                    "++" => (Token::PlusPlus, 2),
                    _ => match c {
                        '(' => (Token::LParen, 1),
                        ')' => (Token::RParen, 1),
                        '{' => (Token::LBrace, 1),
                        '}' => (Token::RBrace, 1),
                        '[' => (Token::LBracket, 1),
                        ']' => (Token::RBracket, 1),
                        ',' => (Token::Comma, 1),
                        ';' => (Token::Semi, 1),
                        '+' => (Token::Plus, 1),
                        '-' => (Token::Minus, 1),
                        '*' => (Token::Star, 1),
                        '/' => (Token::Slash, 1),
                        '<' => (Token::Lt, 1),
                        '>' => (Token::Gt, 1),
                        '=' => (Token::Assign, 1),
                        '&' => (Token::Amp, 1),
                        other => {
                            return Err(LexError {
                                offset: i,
                                message: format!("unexpected character {other:?}"),
                            })
                        }
                    },
                };
                tokens.push(tok);
                i += len;
            }
        }
    }
    Ok(tokens)
}

/// Lex a numeric literal starting at `start`; returns the token and the
/// index just past it.
fn lex_number(src: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if !saw_exp => {
                // exponent must be followed by digits or sign+digits
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    saw_exp = true;
                    i = j;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let text = &src[start..i];
    let suffix = if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') {
        i += 1;
        true
    } else {
        false
    };
    if !saw_dot && !saw_exp && !suffix {
        let v: i64 = text.parse().map_err(|_| LexError {
            offset: start,
            message: format!("bad integer literal {text:?}"),
        })?;
        Ok((Token::Int(v), i))
    } else {
        let v: f64 = text.parse().map_err(|_| LexError {
            offset: start,
            message: format!("bad float literal {text:?}"),
        })?;
        Ok((Token::Float(v, suffix), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_identifiers_and_symbols() {
        let toks = tokenize("void compute(double comp) { comp += 1; }").unwrap();
        assert_eq!(toks[0], Token::Ident("void".into()));
        assert_eq!(toks[1], Token::Ident("compute".into()));
        assert_eq!(toks[2], Token::LParen);
        assert!(toks.contains(&Token::PlusAssign));
        assert!(toks.contains(&Token::Int(1)));
    }

    #[test]
    fn lexes_varity_float_literals() {
        let toks = tokenize("1.5955E-125 1.3305E12 0.0").unwrap();
        assert_eq!(toks[0], Token::Float(1.5955e-125, false));
        assert_eq!(toks[1], Token::Float(1.3305e12, false));
        assert_eq!(toks[2], Token::Float(0.0, false));
    }

    #[test]
    fn lexes_f32_suffix() {
        let toks = tokenize("1.5000E0F 2.5f").unwrap();
        assert_eq!(toks[0], Token::Float(1.5, true));
        assert_eq!(toks[1], Token::Float(2.5, true));
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        let src = "#include <cmath>\n// line\n/* block\ncomment */ x";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks, vec![Token::Ident("x".into())]);
    }

    #[test]
    fn lexes_string_literals() {
        let toks = tokenize(r#"printf("%.17g\n", comp);"#).unwrap();
        assert_eq!(toks[0], Token::Ident("printf".into()));
        assert_eq!(toks[1], Token::LParen);
        assert_eq!(toks[2], Token::Str("%.17g\\n".into()));
    }

    #[test]
    fn two_char_operators_win_over_one_char() {
        let toks = tokenize("a <= b >= c == d != e ++ f").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::EqEq));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::PlusPlus));
    }

    #[test]
    fn kernel_launch_chevrons_lex_as_lt_gt() {
        // <<< becomes three Lt tokens; the parser never sees host code, but
        // the lexer must not choke on it
        let toks = tokenize("compute<<<1, 1>>>(x);").unwrap();
        assert_eq!(toks.iter().filter(|t| **t == Token::Lt).count(), 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(tokenize("/* oops").is_err());
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn exponent_requires_digits() {
        // "1.5E" followed by identifier: the E terminates the number
        let toks = tokenize("1.5 Ex").unwrap();
        assert_eq!(toks[0], Token::Float(1.5, false));
        assert_eq!(toks[1], Token::Ident("Ex".into()));
    }

    #[test]
    fn negative_exponent_literal() {
        let toks = tokenize("1.9289E305 1.2924E-311").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Float(1.2924e-311, false));
    }
}
