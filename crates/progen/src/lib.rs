//! # progen — Varity-style random program generation
//!
//! Reimplementation (and HIP extension) of the Varity framework's test
//! generator (paper §III). The pipeline is:
//!
//! 1. [`gen`] draws a random [`ast::Program`] from the grammar described by
//!    a [`grammar::GenConfig`] — floating-point arithmetic over `{+,-,*,/}`,
//!    C math library calls, nested `for` loops, `if` conditions, temporary
//!    variables and arrays (paper Table III).
//! 2. [`inputs`] draws the random inputs, biased toward the numerically
//!    interesting regions (near overflow, near underflow, subnormals,
//!    signed zeros) the way Varity's input generator is.
//! 3. [`emit`] renders the program as compilable CUDA (`.cu`) or HIP
//!    (`.hip`) source — the two dialects differ exactly where the real APIs
//!    do (kernel launch syntax, runtime API prefixes, headers).
//! 4. [`parser`]/[`lexer`] parse the emitted kernel source back into the
//!    AST. This closes the HIPIFY loop: the `hipify` crate rewrites CUDA
//!    source *text*, and the result is re-parsed and recompiled like any
//!    hand-written HIP file.
//! 5. [`transform`] applies semantics-preserving rewrites (statement
//!    reordering, temporary introduction/elimination, dead-code
//!    injection) used by the oracle subsystem's metamorphic checks.

#![deny(missing_docs)]

pub mod ast;
pub mod emit;
pub mod gen;
pub mod grammar;
pub mod inputs;
pub mod lexer;
pub mod parser;
pub mod transform;

pub use ast::{Precision, Program};
pub use gen::generate_program;
pub use grammar::GenConfig;
pub use inputs::{generate_inputs, InputSet};
