//! Recursive-descent parser for the emitted kernel subset.
//!
//! Parses the `__global__ void compute(...) { ... }` function out of a
//! translation unit (host code before/after the kernel is ignored) and
//! rebuilds the [`Program`] AST. This is how HIPIFY-converted sources
//! re-enter the pipeline: text transformation → parse → compile.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};
use gpusim::mathlib::MathFunc;
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index where parsing failed.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { at: 0, message: e.to_string() }
    }
}

/// Parse the `compute` kernel out of CUDA/HIP source text.
///
/// `id` becomes the parsed program's identifier (source text carries none).
pub fn parse_kernel(src: &str, id: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    // find `__global__ ... void compute (`
    let mut start = None;
    for (i, t) in tokens.iter().enumerate() {
        if matches!(t, Token::Ident(s) if s == "__global__") {
            start = Some(i);
            break;
        }
    }
    let start =
        start.ok_or_else(|| ParseError { at: 0, message: "no __global__ kernel found".into() })?;
    let mut p = Parser { tokens: &tokens, pos: start };
    p.parse_program(id)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token, ParseError> {
        let t = self.tokens.get(self.pos).ok_or_else(|| ParseError {
            at: self.pos,
            message: "unexpected end of input".into(),
        })?;
        self.pos += 1;
        Ok(t)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, message: message.into() })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        let pos = self.pos;
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(ParseError { at: pos, message: format!("expected {want}, got {got}") })
        }
    }

    fn expect_ident(&mut self, want: &str) -> Result<(), ParseError> {
        let pos = self.pos;
        match self.next()? {
            Token::Ident(s) if s == want => Ok(()),
            got => Err(ParseError { at: pos, message: format!("expected `{want}`, got {got}") }),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let pos = self.pos;
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            got => Err(ParseError { at: pos, message: format!("expected identifier, got {got}") }),
        }
    }

    fn parse_program(&mut self, id: &str) -> Result<Program, ParseError> {
        self.expect_ident("__global__")?;
        self.expect_ident("void")?;
        self.expect_ident("compute")?;
        self.expect(&Token::LParen)?;

        let mut params = Vec::new();
        let mut precision = None;
        loop {
            let pos = self.pos;
            let ty_name = self.ident()?;
            let ty = match ty_name.as_str() {
                "int" => ParamType::Int,
                "float" | "double" => {
                    let prec = if ty_name == "float" { Precision::F32 } else { Precision::F64 };
                    match precision {
                        None => precision = Some(prec),
                        Some(p) if p != prec => {
                            return Err(ParseError {
                                at: pos,
                                message: "mixed float/double parameters".into(),
                            })
                        }
                        _ => {}
                    }
                    if matches!(self.peek(), Some(Token::Star)) {
                        self.next()?;
                        ParamType::FloatArray
                    } else {
                        ParamType::Float
                    }
                }
                other => {
                    return Err(ParseError {
                        at: pos,
                        message: format!("unknown parameter type `{other}`"),
                    })
                }
            };
            let name = self.ident()?;
            params.push(Param { name, ty });
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                got => {
                    let msg = format!("expected `,` or `)`, got {got}");
                    return Err(ParseError { at: self.pos - 1, message: msg });
                }
            }
        }
        let precision = precision.ok_or_else(|| ParseError {
            at: self.pos,
            message: "kernel has no floating-point parameters".into(),
        })?;

        let body = self.parse_block(precision)?;
        Ok(Program { id: id.to_string(), precision, params, body })
    }

    fn parse_block(&mut self, prec: Precision) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.next()?;
                    return Ok(stmts);
                }
                Some(_) => {
                    if let Some(s) = self.parse_stmt(prec)? {
                        stmts.push(s);
                    }
                }
                None => return self.err("unterminated block"),
            }
        }
    }

    /// Parse one statement; `printf` calls are consumed but yield `None`.
    fn parse_stmt(&mut self, prec: Precision) -> Result<Option<Stmt>, ParseError> {
        let pos = self.pos;
        match self.next()?.clone() {
            Token::Ident(kw) if kw == "if" => {
                self.expect(&Token::LParen)?;
                let lhs = self.parse_expr(prec)?;
                let op = self.parse_cmp_op()?;
                let rhs = self.parse_expr(prec)?;
                self.expect(&Token::RParen)?;
                let body = self.parse_block(prec)?;
                Ok(Some(Stmt::If { cond: Cond { op, lhs, rhs }, body }))
            }
            Token::Ident(kw) if kw == "for" => {
                self.expect(&Token::LParen)?;
                self.expect_ident("int")?;
                let var = self.ident()?;
                self.expect(&Token::Assign)?;
                match self.next()? {
                    Token::Int(0) => {}
                    got => {
                        let msg = format!("loops must start at 0, got {got}");
                        return Err(ParseError { at: self.pos - 1, message: msg });
                    }
                }
                self.expect(&Token::Semi)?;
                let v2 = self.ident()?;
                if v2 != var {
                    return self.err("loop condition variable mismatch");
                }
                self.expect(&Token::Lt)?;
                let bound = self.ident()?;
                self.expect(&Token::Semi)?;
                self.expect(&Token::PlusPlus)?;
                let v3 = self.ident()?;
                if v3 != var {
                    return self.err("loop increment variable mismatch");
                }
                self.expect(&Token::RParen)?;
                let body = self.parse_block(prec)?;
                Ok(Some(Stmt::For { var, bound, body }))
            }
            Token::Ident(kw) if kw == "printf" => {
                // consume to end of statement
                while !matches!(self.peek(), Some(Token::Semi) | None) {
                    self.next()?;
                }
                self.expect(&Token::Semi)?;
                Ok(None)
            }
            Token::Ident(kw) if kw == "double" || kw == "float" => {
                let declared = if kw == "float" { Precision::F32 } else { Precision::F64 };
                if declared != prec {
                    return Err(ParseError {
                        at: pos,
                        message: "temporary declared with the wrong precision".into(),
                    });
                }
                let name = self.ident()?;
                self.expect(&Token::Assign)?;
                let init = self.parse_expr(prec)?;
                self.expect(&Token::Semi)?;
                Ok(Some(Stmt::DeclTmp { name, init }))
            }
            Token::Ident(name) => {
                // assignment: `name [index]? op expr ;`
                let target = if matches!(self.peek(), Some(Token::LBracket)) {
                    self.next()?;
                    let idx = self.ident()?;
                    self.expect(&Token::RBracket)?;
                    LValue::Index(name, idx)
                } else {
                    LValue::Var(name)
                };
                let op_pos = self.pos;
                let op = match self.next()? {
                    Token::Assign => AssignOp::Set,
                    Token::PlusAssign => AssignOp::AddAssign,
                    Token::MinusAssign => AssignOp::SubAssign,
                    Token::StarAssign => AssignOp::MulAssign,
                    Token::SlashAssign => AssignOp::DivAssign,
                    got => {
                        let msg = format!("expected assignment operator, got {got}");
                        return Err(ParseError { at: op_pos, message: msg });
                    }
                };
                let value = self.parse_expr(prec)?;
                self.expect(&Token::Semi)?;
                Ok(Some(Stmt::Assign { target, op, value }))
            }
            got => Err(ParseError { at: pos, message: format!("unexpected token {got}") }),
        }
    }

    /// After a `(double)`/`(float)` cast: expects `threadIdx.x`.
    fn parse_thread_idx(&mut self) -> Result<Expr, ParseError> {
        self.expect_ident("threadIdx")?;
        self.expect(&Token::Dot)?;
        self.expect_ident("x")?;
        Ok(Expr::ThreadIdx)
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let pos = self.pos;
        Ok(match self.next()? {
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::EqEq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            got => {
                return Err(ParseError {
                    at: pos,
                    message: format!("expected comparison operator, got {got}"),
                })
            }
        })
    }

    fn parse_expr(&mut self, prec: Precision) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term(prec)?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next()?;
            let rhs = self.parse_term(prec)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_term(&mut self, prec: Precision) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary(prec)?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.next()?;
            let rhs = self.parse_unary(prec)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self, prec: Precision) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Plus) => {
                self.next()?;
                // unary plus is the identity; signed literals fold
                self.parse_unary(prec)
            }
            Some(Token::Minus) => {
                self.next()?;
                let inner = self.parse_unary(prec)?;
                // fold `-literal` into the literal, matching the emitter's
                // representation of negative constants
                Ok(match inner {
                    Expr::Lit(v) => Expr::Lit(-v),
                    other => Expr::Neg(Box::new(other)),
                })
            }
            _ => self.parse_primary(prec),
        }
    }

    fn parse_primary(&mut self, prec: Precision) -> Result<Expr, ParseError> {
        let pos = self.pos;
        match self.next()?.clone() {
            Token::Float(v, suffixed) => {
                let v = if suffixed || prec == Precision::F32 { v as f32 as f64 } else { v };
                Ok(Expr::Lit(v))
            }
            Token::Int(v) => Ok(Expr::Lit(v as f64)),
            Token::LParen => {
                // cast form: `(double)threadIdx.x` / `(float)threadIdx.x`
                if let Some(Token::Ident(ty)) = self.peek() {
                    if (ty == "double" || ty == "float")
                        && self.tokens.get(self.pos + 1) == Some(&Token::RParen)
                    {
                        self.next()?; // type
                        self.next()?; // `)`
                        return self.parse_thread_idx();
                    }
                }
                let e = self.parse_expr(prec)?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) if name == "threadIdx" => {
                self.expect(&Token::Dot)?;
                self.expect_ident("x")?;
                Ok(Expr::ThreadIdx)
            }
            Token::Ident(name) => match self.peek() {
                Some(Token::LParen) => {
                    let func = MathFunc::from_c_name(&name).ok_or_else(|| ParseError {
                        at: pos,
                        message: format!("unknown function `{name}`"),
                    })?;
                    self.next()?;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.parse_expr(prec)?);
                            match self.next()? {
                                Token::Comma => continue,
                                Token::RParen => break,
                                got => {
                                    let msg = format!("expected `,` or `)`, got {got}");
                                    return Err(ParseError { at: self.pos - 1, message: msg });
                                }
                            }
                        }
                    } else {
                        self.next()?;
                    }
                    if args.len() != func.arity() {
                        return Err(ParseError {
                            at: pos,
                            message: format!(
                                "{name} expects {} args, got {}",
                                func.arity(),
                                args.len()
                            ),
                        });
                    }
                    Ok(Expr::Call(func, args))
                }
                Some(Token::LBracket) => {
                    self.next()?;
                    let idx = self.ident()?;
                    self.expect(&Token::RBracket)?;
                    Ok(Expr::Index(name, idx))
                }
                _ => Ok(Expr::Var(name)),
            },
            got => Err(ParseError { at: pos, message: format!("unexpected token {got}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{emit, emit_kernel, Dialect};
    use crate::gen::generate_program;
    use crate::grammar::GenConfig;

    #[test]
    fn parses_fig5_kernel() {
        let src = r#"
__global__ /* __global__ is used for device run */
void compute(double comp) {
  double tmp_1 = +1.1147E-307;
  comp += tmp_1 / ceil(+1.5955E-125);
  printf("%.17g\n", comp);
}
"#;
        let p = parse_kernel(src, "fig5").unwrap();
        assert_eq!(p.precision, Precision::F64);
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.body.len(), 2);
        match &p.body[0] {
            Stmt::DeclTmp { name, init } => {
                assert_eq!(name, "tmp_1");
                assert_eq!(init, &Expr::Lit(1.1147e-307));
            }
            other => panic!("expected decl, got {other:?}"),
        }
        match &p.body[1] {
            Stmt::Assign { op: AssignOp::AddAssign, value, .. } => {
                let want = Expr::bin(
                    BinOp::Div,
                    Expr::Var("tmp_1".into()),
                    Expr::Call(MathFunc::Ceil, vec![Expr::Lit(1.5955e-125)]),
                );
                assert_eq!(value, &want);
            }
            other => panic!("expected comp +=, got {other:?}"),
        }
    }

    #[test]
    fn parses_loops_and_conditions() {
        let src = r#"
__global__ void compute(double comp, int var_1, double var_2) {
  if (comp >= (var_2 * var_2)) {
    for (int i = 0; i < var_1; ++i) {
      comp -= sqrt(var_2 + -1.7976E3);
    }
  }
  printf("%.17g\n", comp);
}
"#;
        let p = parse_kernel(src, "t").unwrap();
        assert_eq!(p.loop_depth(), 1);
        match &p.body[0] {
            Stmt::If { cond, body } => {
                assert_eq!(cond.op, CmpOp::Ge);
                assert!(matches!(body[0], Stmt::For { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let src = "__global__ void compute(double comp) { comp += -1.7744E-2; }";
        let p = parse_kernel(src, "t").unwrap();
        match &p.body[0] {
            Stmt::Assign { value, .. } => assert_eq!(value, &Expr::Lit(-1.7744e-2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_on_parenthesized_expr_stays_neg() {
        let src = "__global__ void compute(double comp) { comp += -(comp + 1.0); }";
        let p = parse_kernel(src, "t").unwrap();
        match &p.body[0] {
            Stmt::Assign { value, .. } => assert!(matches!(value, Expr::Neg(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fp32_source_parses_with_f_suffix_functions() {
        let src = "__global__ void compute(float comp, float var_2) { comp += cosf(var_2) * +1.5000E0F; }";
        let p = parse_kernel(src, "t").unwrap();
        assert_eq!(p.precision, Precision::F32);
        let calls = p.math_calls();
        assert_eq!(calls, vec![MathFunc::Cos]);
    }

    #[test]
    fn array_parameters_and_indexing() {
        let src = "__global__ void compute(double comp, int var_1, double * var_5) {\n\
                   for (int i = 0; i < var_1; ++i) { var_5[i] = comp; comp += var_5[i]; } }";
        let p = parse_kernel(src, "t").unwrap();
        assert!(p.uses_arrays());
        match &p.body[0] {
            Stmt::For { body, .. } => {
                assert!(matches!(&body[0], Stmt::Assign { target: LValue::Index(a, i), .. }
                    if a == "var_5" && i == "i"));
                assert!(
                    matches!(&body[1], Stmt::Assign { value: Expr::Bin(..), .. })
                        || matches!(&body[1], Stmt::Assign { value: Expr::Index(..), .. })
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_an_error() {
        let src = "__global__ void compute(double comp) { comp += frobnicate(comp); }";
        let err = parse_kernel(src, "t").unwrap_err();
        assert!(err.message.contains("frobnicate"), "{err}");
    }

    #[test]
    fn missing_kernel_is_an_error() {
        let err = parse_kernel("int main() { return 0; }", "t").unwrap_err();
        assert!(err.message.contains("__global__"), "{err}");
    }

    #[test]
    fn operator_precedence_without_parens() {
        let src = "__global__ void compute(double comp) { comp = comp + comp * comp; }";
        let p = parse_kernel(src, "t").unwrap();
        match &p.body[0] {
            Stmt::Assign { value: Expr::Bin(BinOp::Add, _, rhs), .. } => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn roundtrip_emit_parse_is_identity_fp64() {
        let cfg = GenConfig::varity_default(Precision::F64);
        for i in 0..100 {
            let p = generate_program(&cfg, 21, i);
            let src = emit_kernel(&p);
            let back =
                parse_kernel(&src, &p.id).unwrap_or_else(|e| panic!("program {i}: {e}\n{src}"));
            assert_eq!(p, back, "roundtrip mismatch for program {i}\n{src}");
        }
    }

    #[test]
    fn roundtrip_emit_parse_is_identity_fp32() {
        let cfg = GenConfig::varity_default(Precision::F32);
        for i in 0..100 {
            let p = generate_program(&cfg, 22, i);
            let src = emit_kernel(&p);
            let back =
                parse_kernel(&src, &p.id).unwrap_or_else(|e| panic!("program {i}: {e}\n{src}"));
            assert_eq!(p, back, "roundtrip mismatch for program {i}\n{src}");
        }
    }

    #[test]
    fn roundtrip_through_full_translation_units() {
        // host code (main, launches) must not confuse the kernel parser
        for dialect in [Dialect::Cuda, Dialect::Hip] {
            let cfg = GenConfig::varity_default(Precision::F64);
            for i in 0..20 {
                let p = generate_program(&cfg, 23, i);
                let src = emit(&p, dialect);
                let back =
                    parse_kernel(&src, &p.id).unwrap_or_else(|e| panic!("program {i}: {e}\n{src}"));
                assert_eq!(p, back, "dialect {dialect:?} program {i}");
            }
        }
    }
}
