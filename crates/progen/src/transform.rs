//! Semantics-preserving program transformations (metamorphic testing).
//!
//! The oracle subsystem (`crates/oracle`) validates the simulated
//! toolchains against themselves by compiling a program and a transformed
//! variant that *must* compute the same value, then comparing outcomes per
//! toolchain and opt level. This module supplies those variants.
//!
//! Each [`Transform`] carries an exactness contract
//! ([`Transform::bit_exact_at_all_levels`]):
//!
//! * [`Transform::ReorderIndependent`] and [`Transform::InjectDeadCode`]
//!   must be bit-exact at *every* opt level — no pass in either toolchain
//!   is sensitive to statement order between independent statements, and a
//!   never-read temporary cannot feed `comp`.
//! * [`Transform::IntroduceTmp`] and [`Transform::EliminateTmp`] are
//!   bit-exact at `O0`; at `O1+` they may legitimately diverge when a
//!   value-changing pass (FMA contraction, reassociation, …) sees a
//!   different expression shape. The oracle accepts such divergence only
//!   when one of those semantic passes actually fired.
//!
//! The literal re-parsing round trip ([`parse_roundtrip`]) is the fifth
//! metamorphic check: emitting a program through [`crate::emit`] and
//! parsing it back must reproduce the AST exactly (the paper's pipeline
//! depends on this for the HIPIFY loop).

use crate::ast::{BinOp, Expr, LValue, Param, ParamType, Program, Stmt};
use crate::emit::emit_kernel;
use crate::parser::parse_kernel;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// A semantics-preserving transformation the oracle can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Swap two adjacent statements whose read/write sets are disjoint.
    ReorderIndependent,
    /// Insert a never-read temporary computed from existing float
    /// parameters and exactly-representable literals.
    InjectDeadCode,
    /// Split `x op= e` into `t = e; x op= t` with a fresh temporary.
    IntroduceTmp,
    /// Inline a single-use temporary into its unique use site.
    EliminateTmp,
}

impl Transform {
    /// All transformations, in a fixed order the oracle iterates.
    pub const ALL: [Transform; 4] = [
        Transform::ReorderIndependent,
        Transform::InjectDeadCode,
        Transform::IntroduceTmp,
        Transform::EliminateTmp,
    ];

    /// Stable name used in findings and reports.
    pub fn name(self) -> &'static str {
        match self {
            Transform::ReorderIndependent => "reorder-independent",
            Transform::InjectDeadCode => "inject-dead-code",
            Transform::IntroduceTmp => "introduce-tmp",
            Transform::EliminateTmp => "eliminate-tmp",
        }
    }

    /// Whether the variant must match the original bit-for-bit at every
    /// opt level (see module docs). When `false`, divergence at `O1+` is
    /// acceptable only if a semantic (value-changing) pass fired.
    pub fn bit_exact_at_all_levels(self) -> bool {
        matches!(self, Transform::ReorderIndependent | Transform::InjectDeadCode)
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Apply `transform` to `program`, choosing the site with a rng seeded by
/// `seed`. Returns `None` when the program has no applicable site (e.g. no
/// adjacent independent statement pair); the caller skips the check then.
///
/// Determinism: same `(program, transform, seed)` → same variant.
pub fn apply(program: &Program, transform: Transform, seed: u64) -> Option<Program> {
    let mut rng =
        ChaCha8Rng::seed_from_u64(seed ^ (transform as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match transform {
        Transform::ReorderIndependent => reorder_independent(program, &mut rng),
        Transform::InjectDeadCode => inject_dead_code(program, &mut rng),
        Transform::IntroduceTmp => introduce_tmp(program, &mut rng),
        Transform::EliminateTmp => eliminate_tmp(program),
    }
}

/// Emit the kernel and parse it back — the literal re-parsing round trip.
/// Returns the re-parsed program, or the parse error rendered as a string.
pub fn parse_roundtrip(program: &Program) -> Result<Program, String> {
    let src = emit_kernel(program);
    parse_kernel(&src, &program.id).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Effect analysis
// ---------------------------------------------------------------------------

/// Conservative read/write sets of a statement. Arrays are treated as a
/// unit (any element write conflicts with any element read), nested bodies
/// are unioned, and compound assignments read their own target.
#[derive(Debug, Default, Clone)]
struct Effects {
    reads: BTreeSet<String>,
    writes: BTreeSet<String>,
}

impl Effects {
    fn of(stmt: &Stmt) -> Effects {
        let mut e = Effects::default();
        stmt_effects(stmt, &mut e);
        e
    }

    /// True when the two statements can be swapped without changing any
    /// observable value: neither writes anything the other touches.
    fn independent(&self, other: &Effects) -> bool {
        self.writes.is_disjoint(&other.reads)
            && self.writes.is_disjoint(&other.writes)
            && other.writes.is_disjoint(&self.reads)
    }
}

fn expr_reads(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Lit(_) | Expr::ThreadIdx => {}
        Expr::Var(v) => {
            out.insert(v.clone());
        }
        Expr::Index(a, i) => {
            out.insert(a.clone());
            out.insert(i.clone());
        }
        Expr::Neg(inner) => expr_reads(inner, out),
        Expr::Bin(_, l, r) => {
            expr_reads(l, out);
            expr_reads(r, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_reads(a, out);
            }
        }
    }
}

fn stmt_effects(s: &Stmt, eff: &mut Effects) {
    match s {
        Stmt::DeclTmp { name, init } => {
            expr_reads(init, &mut eff.reads);
            eff.writes.insert(name.clone());
        }
        Stmt::Assign { target, op, value } => {
            expr_reads(value, &mut eff.reads);
            match target {
                LValue::Var(v) => {
                    // compound assignment reads the old value; plain `=`
                    // conservatively treated the same (cheap and safe)
                    eff.reads.insert(v.clone());
                    eff.writes.insert(v.clone());
                }
                LValue::Index(a, i) => {
                    eff.reads.insert(a.clone());
                    eff.reads.insert(i.clone());
                    eff.writes.insert(a.clone());
                }
            }
            let _ = op;
        }
        Stmt::If { cond, body } => {
            expr_reads(&cond.lhs, &mut eff.reads);
            expr_reads(&cond.rhs, &mut eff.reads);
            for s in body {
                stmt_effects(s, eff);
            }
        }
        Stmt::For { var, bound, body } => {
            eff.reads.insert(bound.clone());
            eff.writes.insert(var.clone());
            eff.reads.insert(var.clone());
            for s in body {
                stmt_effects(s, eff);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statement-list navigation (paths into nested If/For bodies)
// ---------------------------------------------------------------------------

/// Visit every statement list in the program (top level plus every nested
/// `if`/`for` body), calling `f(path, list)` where `path` addresses the
/// list: each element is the index of the enclosing `If`/`For` statement.
fn visit_lists(stmts: &[Stmt], path: &mut Vec<usize>, f: &mut impl FnMut(&[usize], &[Stmt])) {
    f(path, stmts);
    for (i, s) in stmts.iter().enumerate() {
        if let Stmt::If { body, .. } | Stmt::For { body, .. } = s {
            path.push(i);
            visit_lists(body, path, f);
            path.pop();
        }
    }
}

/// Resolve a path produced by [`visit_lists`] into a mutable list.
fn list_at_mut<'a>(stmts: &'a mut Vec<Stmt>, path: &[usize]) -> &'a mut Vec<Stmt> {
    match path.split_first() {
        None => stmts,
        Some((&i, rest)) => match &mut stmts[i] {
            Stmt::If { body, .. } | Stmt::For { body, .. } => list_at_mut(body, rest),
            _ => unreachable!("path addresses a statement without a body"),
        },
    }
}

// ---------------------------------------------------------------------------
// ReorderIndependent
// ---------------------------------------------------------------------------

fn reorder_independent(program: &Program, rng: &mut ChaCha8Rng) -> Option<Program> {
    // collect every legal adjacent swap (path, index)
    let mut candidates: Vec<(Vec<usize>, usize)> = Vec::new();
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |path, list| {
        for i in 0..list.len().saturating_sub(1) {
            let a = Effects::of(&list[i]);
            let b = Effects::of(&list[i + 1]);
            if a.independent(&b) {
                candidates.push((path.to_vec(), i));
            }
        }
    });
    let (path, i) = candidates.choose(rng)?.clone();
    let mut variant = program.clone();
    list_at_mut(&mut variant.body, &path).swap(i, i + 1);
    Some(variant)
}

// ---------------------------------------------------------------------------
// InjectDeadCode
// ---------------------------------------------------------------------------

/// Literals whose 4-decimal-digit rendering parses back bit-exactly in
/// both precisions (keeps the variant itself round-trip clean).
const DEAD_LITERALS: [f64; 6] = [1.5, 0.5, 2.0, 3.25, 0.25, 4.0];

fn inject_dead_code(program: &Program, rng: &mut ChaCha8Rng) -> Option<Program> {
    // operands: float parameters (always includes `comp`) and exact literals
    let float_params: Vec<&Param> = program.params_of(ParamType::Float).collect();
    let operand = |rng: &mut ChaCha8Rng| -> Expr {
        if rng.gen_bool(0.5) {
            match float_params.choose(rng) {
                Some(p) => Expr::Var(p.name.clone()),
                None => Expr::Lit(*DEAD_LITERALS.choose(rng).expect("non-empty pool")),
            }
        } else {
            Expr::Lit(*DEAD_LITERALS.choose(rng).expect("non-empty pool"))
        }
    };
    // no Neg (the parser folds `-literal`), no Div needed for deadness
    let ops = [BinOp::Add, BinOp::Sub, BinOp::Mul];
    let mut init = Expr::bin(*ops.choose(rng).unwrap(), operand(rng), operand(rng));
    if rng.gen_bool(0.5) {
        init = Expr::bin(*ops.choose(rng).unwrap(), init, operand(rng));
    }

    // insertion point: any position in any statement list
    let mut slots: Vec<(Vec<usize>, usize)> = Vec::new();
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |path, list| {
        for i in 0..=list.len() {
            slots.push((path.to_vec(), i));
        }
    });
    let (path, i) = slots.choose(rng)?.clone();
    let mut variant = program.clone();
    let name = fresh_name(program, "oracle_dead");
    list_at_mut(&mut variant.body, &path).insert(i, Stmt::DeclTmp { name, init });
    Some(variant)
}

/// A variable name not used anywhere in the program.
fn fresh_name(program: &Program, prefix: &str) -> String {
    let mut used: BTreeSet<String> = program.params.iter().map(|p| p.name.clone()).collect();
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |_, list| {
        for s in list {
            let e = Effects::of(s);
            used.extend(e.reads);
            used.extend(e.writes);
        }
    });
    let mut n = 0usize;
    loop {
        let candidate = format!("{prefix}_{n}");
        if !used.contains(&candidate) {
            return candidate;
        }
        n += 1;
    }
}

// ---------------------------------------------------------------------------
// IntroduceTmp
// ---------------------------------------------------------------------------

fn introduce_tmp(program: &Program, rng: &mut ChaCha8Rng) -> Option<Program> {
    // candidate: any Assign to a scalar with a non-trivial rhs
    let mut candidates: Vec<(Vec<usize>, usize)> = Vec::new();
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |path, list| {
        for (i, s) in list.iter().enumerate() {
            if let Stmt::Assign { target: LValue::Var(_), value, .. } = s {
                if value.node_count() > 1 {
                    candidates.push((path.to_vec(), i));
                }
            }
        }
    });
    let (path, i) = candidates.choose(rng)?.clone();
    let mut variant = program.clone();
    let name = fresh_name(program, "oracle_tmp");
    let list = list_at_mut(&mut variant.body, &path);
    if let Stmt::Assign { value, .. } = &mut list[i] {
        let init = std::mem::replace(value, Expr::Var(name.clone()));
        list.insert(i, Stmt::DeclTmp { name, init });
    }
    Some(variant)
}

// ---------------------------------------------------------------------------
// EliminateTmp
// ---------------------------------------------------------------------------

fn eliminate_tmp(program: &Program) -> Option<Program> {
    // count reads of every name across the whole program
    let mut read_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut write_counts: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |_, list| {
        for s in list {
            // count at the statement level exactly once per list so nested
            // bodies are not double counted
            if !matches!(s, Stmt::If { .. } | Stmt::For { .. }) {
                let e = Effects::of(s);
                for r in e.reads {
                    *read_counts.entry(r).or_default() += 1;
                }
                for w in e.writes {
                    *write_counts.entry(w).or_default() += 1;
                }
            } else {
                // conditions/loop headers still read
                match s {
                    Stmt::If { cond, .. } => {
                        let mut rs = BTreeSet::new();
                        expr_reads(&cond.lhs, &mut rs);
                        expr_reads(&cond.rhs, &mut rs);
                        for r in rs {
                            *read_counts.entry(r).or_default() += 1;
                        }
                    }
                    Stmt::For { bound, .. } => {
                        *read_counts.entry(bound.clone()).or_default() += 1;
                    }
                    _ => unreachable!(),
                }
            }
        }
    });

    // find the first eliminable decl (deterministic: first in visit order)
    let mut chosen: Option<(Vec<usize>, usize, usize)> = None;
    let mut path = Vec::new();
    visit_lists(&program.body, &mut path, &mut |path, list| {
        if chosen.is_some() {
            return;
        }
        'decl: for (i, s) in list.iter().enumerate() {
            let Stmt::DeclTmp { name, init } = s else { continue };
            // exactly one read program-wide, never rewritten
            if read_counts.get(name).copied() != Some(1)
                || write_counts.get(name).copied() != Some(1)
            {
                continue;
            }
            let mut init_reads = BTreeSet::new();
            expr_reads(init, &mut init_reads);
            // the read must be a plain Assign later in the same list, with
            // no intervening statement writing the initializer's inputs
            for (j, later) in list.iter().enumerate().skip(i + 1) {
                let le = Effects::of(later);
                if let Stmt::Assign { target, value, .. } = later {
                    let mut value_reads = BTreeSet::new();
                    expr_reads(value, &mut value_reads);
                    let target_touches_tmp = match target {
                        LValue::Var(v) => v == name,
                        LValue::Index(a, idx) => a == name || idx == name,
                    };
                    if value_reads.contains(name) && !target_touches_tmp {
                        chosen = Some((path.to_vec(), i, j));
                        continue 'decl;
                    }
                }
                if le.reads.contains(name) {
                    // read from a nested body or a decl: not eliminable
                    continue 'decl;
                }
                if !le.writes.is_disjoint(&init_reads) {
                    continue 'decl; // initializer inputs change before use
                }
            }
        }
    });

    let (path, i, j) = chosen?;
    let mut variant = program.clone();
    let list = list_at_mut(&mut variant.body, &path);
    let Stmt::DeclTmp { name, init } = list[i].clone() else { unreachable!() };
    if let Stmt::Assign { value, .. } = &mut list[j] {
        *value = substitute(value, &name, &init);
    }
    list.remove(i);
    Some(variant)
}

/// Replace every `Var(name)` in `e` with `replacement`.
fn substitute(e: &Expr, name: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Var(v) if v == name => replacement.clone(),
        Expr::Lit(_) | Expr::Var(_) | Expr::Index(..) | Expr::ThreadIdx => e.clone(),
        Expr::Neg(inner) => Expr::Neg(Box::new(substitute(inner, name, replacement))),
        Expr::Bin(op, l, r) => Expr::Bin(
            *op,
            Box::new(substitute(l, name, replacement)),
            Box::new(substitute(r, name, replacement)),
        ),
        Expr::Call(f, args) => {
            Expr::Call(*f, args.iter().map(|a| substitute(a, name, replacement)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, Precision};
    use crate::gen::generate_program;
    use crate::grammar::GenConfig;

    fn sample(i: u64) -> Program {
        generate_program(&GenConfig::varity_default(Precision::F64), 42, i)
    }

    #[test]
    fn transforms_are_deterministic() {
        for i in 0..10 {
            let p = sample(i);
            for t in Transform::ALL {
                assert_eq!(apply(&p, t, 7), apply(&p, t, 7), "{t} program {i}");
            }
        }
    }

    #[test]
    fn variants_differ_from_the_original_or_are_none() {
        let mut applied = 0;
        for i in 0..30 {
            let p = sample(i);
            for t in Transform::ALL {
                if let Some(v) = apply(&p, t, i) {
                    applied += 1;
                    assert_eq!(v.id, p.id);
                    assert_eq!(v.params, p.params, "{t} must not touch params");
                    if t != Transform::ReorderIndependent {
                        // a reorder can pick two structurally equal stmts;
                        // the others always change the body
                        assert_ne!(v.body, p.body, "{t} produced an identical body");
                    }
                }
            }
        }
        assert!(applied > 30, "transforms almost never applicable: {applied}");
    }

    #[test]
    fn dead_code_injects_an_unread_decl() {
        for i in 0..20 {
            let p = sample(i);
            let v = apply(&p, Transform::InjectDeadCode, i).expect("always applicable");
            assert_eq!(v.stmt_count(), p.stmt_count() + 1);
            // the fresh name is read nowhere
            let mut path = Vec::new();
            let mut reads = BTreeSet::new();
            visit_lists(&v.body, &mut path, &mut |_, list| {
                for s in list {
                    reads.extend(Effects::of(s).reads);
                }
            });
            assert!(!reads.iter().any(|r| r.starts_with("oracle_dead")), "{reads:?}");
        }
    }

    #[test]
    fn introduce_then_roundtrip_is_exact() {
        for i in 0..20 {
            let p = sample(i);
            if let Some(v) = apply(&p, Transform::IntroduceTmp, i) {
                let back = parse_roundtrip(&v).expect("variant must stay parseable");
                assert_eq!(back, v, "program {i}");
            }
        }
    }

    #[test]
    fn eliminate_inlines_single_use_tmp() {
        let p = Program {
            id: "elim".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body: vec![
                Stmt::DeclTmp {
                    name: "tmp_1".into(),
                    init: Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.5)),
                },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::Var("tmp_1".into()),
                },
            ],
        };
        let v = apply(&p, Transform::EliminateTmp, 0).expect("eliminable");
        assert_eq!(v.body.len(), 1);
        assert_eq!(
            v.body[0],
            Stmt::Assign {
                target: LValue::Var("comp".into()),
                op: AssignOp::AddAssign,
                value: Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.5)),
            }
        );
    }

    #[test]
    fn eliminate_refuses_when_inputs_change_between_decl_and_use() {
        let p = Program {
            id: "no-elim".into(),
            precision: Precision::F64,
            params: vec![
                Param { name: "comp".into(), ty: ParamType::Float },
                Param { name: "var_1".into(), ty: ParamType::Int },
                Param { name: "var_2".into(), ty: ParamType::Float },
            ],
            body: vec![
                Stmt::DeclTmp { name: "tmp_1".into(), init: Expr::Var("var_2".into()) },
                Stmt::Assign {
                    target: LValue::Var("var_2".into()),
                    op: AssignOp::MulAssign,
                    value: Expr::Lit(2.0),
                },
                Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::Var("tmp_1".into()),
                },
            ],
        };
        assert_eq!(apply(&p, Transform::EliminateTmp, 0), None);
    }

    #[test]
    fn reorder_swaps_only_independent_neighbours() {
        for i in 0..30 {
            let p = sample(i);
            if let Some(v) = apply(&p, Transform::ReorderIndependent, i) {
                // exactly one adjacent pair swapped somewhere; verify the
                // swapped statements really are independent
                assert_eq!(v.stmt_count(), p.stmt_count(), "program {i}");
            }
        }
    }

    #[test]
    fn generated_programs_roundtrip() {
        for i in 0..20 {
            let p = sample(i);
            assert_eq!(parse_roundtrip(&p).unwrap(), p, "program {i}");
        }
    }

    #[test]
    fn injected_variants_roundtrip() {
        for i in 0..20 {
            let p = sample(i);
            let v = apply(&p, Transform::InjectDeadCode, i).unwrap();
            assert_eq!(parse_roundtrip(&v).unwrap(), v, "program {i}");
        }
    }
}
