//! Parser robustness: arbitrary input must produce `Ok` or `Err`, never a
//! panic, and valid-source mutations must not break the invariant that
//! parsed programs execute or reject cleanly.

use progen::emit::emit_kernel;
use progen::gen::generate_program;
use progen::grammar::GenConfig;
use progen::lexer::tokenize;
use progen::parser::parse_kernel;
use progen::Precision;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// the lexer never panics on arbitrary bytes-as-string input.
    #[test]
    fn lexer_total_on_arbitrary_input(s in "\\PC*") {
        let _ = tokenize(&s);
    }

    /// the parser never panics on arbitrary input.
    #[test]
    fn parser_total_on_arbitrary_input(s in "\\PC*") {
        let _ = parse_kernel(&s, "fuzz");
    }

    /// the parser never panics on C-ish token soup.
    #[test]
    fn parser_total_on_cish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("__global__".to_string()),
                Just("void".to_string()),
                Just("compute".to_string()),
                Just("double".to_string()),
                Just("comp".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just(";".to_string()),
                Just("+=".to_string()),
                Just("for".to_string()),
                Just("if".to_string()),
                Just("1.5E-10".to_string()),
                Just("threadIdx".to_string()),
                Just(".".to_string()),
                Just("x".to_string()),
                Just("sin".to_string()),
                Just(",".to_string()),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_kernel(&src, "fuzz");
    }

    /// truncating valid source at any byte never panics the parser.
    #[test]
    fn parser_total_on_truncated_valid_source(
        seed in any::<u64>(),
        index in 0u64..100,
        cut_frac in 0.0f64..1.0,
    ) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, seed, index);
        let src = emit_kernel(&p);
        let cut = ((src.len() as f64) * cut_frac) as usize;
        // cut at a char boundary
        let mut cut = cut.min(src.len());
        while !src.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_kernel(&src[..cut], "fuzz");
    }

    /// deleting a random line from valid source never panics.
    #[test]
    fn parser_total_on_line_deleted_source(
        seed in any::<u64>(),
        index in 0u64..100,
        line_pick in any::<u64>(),
    ) {
        let cfg = GenConfig::varity_default(Precision::F32);
        let p = generate_program(&cfg, seed, index);
        let src = emit_kernel(&p);
        let lines: Vec<&str> = src.lines().collect();
        let drop = (line_pick as usize) % lines.len();
        let mutated: Vec<&str> = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, l)| *l)
            .collect();
        let _ = parse_kernel(&mutated.join("\n"), "fuzz");
    }
}
