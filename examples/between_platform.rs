//! The between-platform protocol of the paper's Fig. 3.
//!
//! GPUs from different vendors live in different clusters, so a campaign
//! runs in two halves: cluster `C1` (NVIDIA) generates the tests, runs its
//! compiler, and saves a JSON metadata file; cluster `C2` (AMD) regenerates
//! the *same* tests from the shared configuration, runs its side, and the
//! merged metadata is analyzed.
//!
//! Run with: `cargo run --release --example between_platform`

use gpu_numerics::difftest::campaign::{analyze, CampaignConfig, TestMode};
use gpu_numerics::difftest::metadata::CampaignMeta;
use gpu_numerics::difftest::report::render_digest;
use gpu_numerics::gpucc::pipeline::Toolchain;
use gpu_numerics::progen::Precision;

fn main() {
    let dir = std::env::temp_dir().join("gpu_numerics_between_platform");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let c1_path = dir.join("lassen_metadata.json");
    let c2_path = dir.join("tioga_metadata.json");

    let config = CampaignConfig::default_for(Precision::F64, TestMode::Direct).with_programs(60);

    // ---- cluster C1 (the NVIDIA system) ----
    println!("[C1/Lassen-sim] generating tests and running the nvcc side…");
    let mut c1 = CampaignMeta::generate(&config);
    c1.run_side(Toolchain::Nvcc);
    c1.save(&c1_path).expect("save C1 metadata");
    println!("[C1/Lassen-sim] saved {} tests to {}", c1.tests.len(), c1_path.display());

    // ---- cluster C2 (the AMD system) ----
    // C2 loads the metadata, regenerates the exact same tests and inputs
    // from the embedded config, and runs its own side.
    println!("[C2/Tioga-sim]  loading metadata and running the hipcc side…");
    let mut c2 = CampaignMeta::load(&c1_path).expect("load on C2");
    for test in &c2.tests.clone() {
        // sanity: regeneration is bit-identical (ids checked internally)
        let p = c2.program_for(test);
        assert_eq!(p.id, test.program_id);
    }
    c2.run_side(Toolchain::Hipcc);
    c2.save(&c2_path).expect("save C2 metadata");

    // ---- merge + analyze ----
    let merged = CampaignMeta::merge(c1, c2).expect("same campaign");
    assert!(merged.is_complete());
    let report = analyze(&merged);
    println!("\n{}", render_digest(&report));
    for (level, stats) in &report.per_level {
        println!(
            "  {:<6} {:>4} discrepancies in {:>6} runs",
            level.label(),
            stats.discrepancies,
            stats.runs
        );
    }

    std::fs::remove_file(&c1_path).ok();
    std::fs::remove_file(&c2_path).ok();
}
