//! Case study 2 (paper Fig. 5): `ceil` of a tiny positive value returns 0
//! on the NVIDIA-like platform and 1 on the AMD-like platform; dividing by
//! the result turns the difference into Inf vs Number.
//!
//! The example rebuilds the paper's exact kernel:
//!
//! ```c
//! __global__ void compute(double comp) {
//!   double tmp_1 = +1.1147E-307;
//!   comp += tmp_1 / ceil(+1.5955E-125);
//!   printf("%.17g\n", comp);
//! }
//! ```
//!
//! Run with: `cargo run --example case_study_ceil`

use gpu_numerics::difftest::compare_runs;
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::mathlib::MathFunc;
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::inputs::{InputSet, InputValue};
use gpu_numerics::progen::parser::parse_kernel;

const FIG5_SOURCE: &str = r#"
__global__ /* __global__ is used for device run */
void compute(double comp) {
  double tmp_1 = +1.1147E-307;
  comp += tmp_1 / ceil(+1.5955E-125);
  printf("%.17g\n", comp);
}
"#;

fn main() {
    // parse the paper's kernel verbatim
    let program = parse_kernel(FIG5_SOURCE, "fig5").expect("Fig. 5 kernel parses");

    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    // the root-cause function call in isolation (third panel of Fig. 5)
    println!("Expression: ceil(1.5955E-125)");
    let cn = nv.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0);
    let ca = amd.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0);
    println!("  nvcc  -O0: {cn}");
    println!("  hipcc -O0: {ca}\n");

    // the paper's failure-inducing input
    let input = InputSet { values: vec![InputValue::Float(1.2374e-306)] };
    println!("Input: +1.2374E-306\nOutput:");
    for level in [OptLevel::O0, OptLevel::O3] {
        let nv_ir = compile(&program, Toolchain::Nvcc, level, false);
        let amd_ir = compile(&program, Toolchain::Hipcc, level, false);
        let rn = execute(&nv_ir, &nv, &input).expect("runs");
        let ra = execute(&amd_ir, &amd, &input).expect("runs");
        let verdict = compare_runs(&rn.value, &ra.value)
            .map(|d| format!("DISCREPANCY [{}]", d.class))
            .unwrap_or_else(|| "consistent".into());
        println!("  nvcc  -{}: {}", level.label(), rn.value.format_exact());
        println!("  hipcc -{}: {}   => {verdict}", level.label(), ra.value.format_exact());
        assert!(
            compare_runs(&rn.value, &ra.value).is_some(),
            "case study must reproduce at {level}"
        );
    }

    println!(
        "\nRoot cause: the NVIDIA-like ceil goes through a magic-number\n\
         addition that loses positive values below 2^-64 and returns 0;\n\
         dividing by that 0 produces Inf (a division-by-zero the AMD-like\n\
         platform, whose ceil returns 1, never performs)."
    );
}
