//! Case study 1 (paper Fig. 4): an `fmod` call with an extreme operand
//! ratio produces different remainders on the two platforms, and the
//! difference compounds through loop iterations.
//!
//! Run with: `cargo run --example case_study_fmod`

use gpu_numerics::gpusim::mathlib::MathFunc;
use gpu_numerics::gpusim::{Device, DeviceKind};

fn main() {
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    // the paper's intermediate expression value and fmod divisor:
    //   fmod(1.5917195493481116e+289, 1.5793E-307)
    let x = 1.5917195493481116e289;
    let y = 1.5793e-307;

    println!("Expression: fmod({x:e}, {y:e})   (operand ratio ~ 1e596)\n");
    let rn = nv.mathlib().call_f64(MathFunc::Fmod, x, y);
    let ra = amd.mathlib().call_f64(MathFunc::Fmod, x, y);
    println!("  {:<18} {}", format!("{} :", nv.mathlib().name()), format_full(rn));
    println!("  {:<18} {}", format!("{} :", amd.mathlib().name()), format_full(ra));
    println!(
        "\n  bit patterns: {:016x} vs {:016x}  ({})",
        rn.to_bits(),
        ra.to_bits(),
        if rn.to_bits() == ra.to_bits() { "EQUAL" } else { "DIFFERENT" }
    );

    // mundane ratios agree exactly — the paper found only 1 of 10 inputs
    // triggered the divergence
    println!("\nMundane operand ratios agree bit-for-bit:");
    for (a, b) in [(5.5, 2.0), (1e10, 3.7), (123.456, 0.001)] {
        let p = nv.mathlib().call_f64(MathFunc::Fmod, a, b);
        let q = amd.mathlib().call_f64(MathFunc::Fmod, a, b);
        println!(
            "  fmod({a}, {b}) = {} / {}  ({})",
            format_full(p),
            format_full(q),
            if p.to_bits() == q.to_bits() { "equal" } else { "DIFFERENT" }
        );
        assert_eq!(p.to_bits(), q.to_bits());
    }

    // root cause: exact bit-level long division vs chunked floating-point
    // reduction — the chunked path loses low bits once |x/y| >= 2^53
    println!(
        "\nRoot cause: the NVIDIA-like library computes fmod with exact\n\
         bit-level long division (SASS/PTX style); the AMD-like library\n\
         uses an __ocml-style chunked floating-point reduction whose\n\
         unfused multiply-subtract steps round — beyond a 2^53 operand\n\
         ratio the low bits of the remainder decorrelate completely."
    );
    assert_ne!(rn.to_bits(), ra.to_bits(), "case study must reproduce");
}

fn format_full(v: f64) -> String {
    format!("{v:.20e}")
}
