//! Case study 3 (paper Fig. 6): both platforms agree at `-O0`, but once
//! *any* optimization level is enabled one platform reports an infinity
//! and the other a NaN — no math function is at fault; the divergence
//! comes from how the optimizers reshape intermediary computations.
//!
//! The mechanism reproduced here: `comp -= var_6 * var_7` with `comp`
//! already +Inf and an overflowing product.
//!
//! * unoptimized (both compilers): `var_6 * var_7` overflows to `+Inf`,
//!   then `Inf − Inf = NaN`;
//! * at `-O1+` the hipcc-like compiler contracts the pattern into a fused
//!   negate-multiply-add: the *exact* product participates (no
//!   intermediate overflow), so `Inf − 1e308·10 = Inf` — while the
//!   nvcc-like compiler keeps the unfused form and still produces NaN.
//!
//! Run with: `cargo run --example case_study_inf_nan`

use gpu_numerics::difftest::compare_runs;
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::inputs::{InputSet, InputValue};
use gpu_numerics::progen::parser::parse_kernel;

const FIG6_SOURCE: &str = r#"
__global__ /* __global__ is used for device run */
void compute(double comp, int var_1, double var_2, double var_3, double var_4,
             double var_5, double var_6, double var_7, double var_8) {
  double tmp_1 = (-1.8007E-323 - cosh(var_2 / -1.7569E192 + (-1.9894E-307 / +1.7323E-313 + var_3)));
  comp += tmp_1 + fabs(+1.5726E-307 - var_4);
  for (int i = 0; i < var_1; ++i) {
    comp += (+1.9903E306 / var_5);
  }
  comp -= var_6 * var_7;
  if (comp >= (-1.4205E305 - (-1.4055E-312 * var_8))) {
    comp += +1.3803E305 * var_8;
  }
  printf("%.17g\n", comp);
}
"#;

fn main() {
    let program = parse_kernel(FIG6_SOURCE, "fig6").expect("Fig. 6-style kernel parses");
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    // inputs: the loop drives comp to +Inf (1.99e306 / tiny), then the
    // subtraction sees an overflowing product 9e305 * 8e305
    let input = InputSet {
        values: vec![
            InputValue::Float(0.0),       // comp
            InputValue::Int(2),           // var_1
            InputValue::Float(1.0),       // var_2
            InputValue::Float(1148423.0), // var_3 (keeps the cosh argument small)
            InputValue::Float(3.0),       // var_4
            InputValue::Float(1.2e-3),    // var_5 (drives comp to +Inf)
            InputValue::Float(9.0e305),   // var_6
            InputValue::Float(8.0e305),   // var_7 (product overflows)
            InputValue::Float(-1.0),      // var_8
        ],
    };

    println!("level   nvcc result        hipcc result       verdict");
    for level in OptLevel::ALL {
        let nv_ir = compile(&program, Toolchain::Nvcc, level, false);
        let amd_ir = compile(&program, Toolchain::Hipcc, level, false);
        let rn = execute(&nv_ir, &nv, &input).expect("runs");
        let ra = execute(&amd_ir, &amd, &input).expect("runs");
        let verdict = compare_runs(&rn.value, &ra.value)
            .map(|d| format!("DISCREPANCY [{}]", d.class))
            .unwrap_or_else(|| "consistent".into());
        println!(
            "{:<8}{:<19}{:<19}{verdict}",
            level.label(),
            rn.value.format_exact(),
            ra.value.format_exact()
        );
        if level == OptLevel::O0 {
            assert!(
                compare_runs(&rn.value, &ra.value).is_none(),
                "Fig. 6 behaviour: consistent without optimization"
            );
        } else {
            assert!(
                compare_runs(&rn.value, &ra.value).is_some(),
                "Fig. 6 behaviour: divergent under optimization ({level})"
            );
        }
    }

    println!(
        "\nAs in the paper's case study 3, the discrepancy is *not* a math\n\
         function: it appears only when optimization reshapes the\n\
         intermediary computation (here, hipcc's fused contraction of the\n\
         multiply-subtract avoids the Inf − Inf the unfused code performs)."
    );
}
