//! Campaign over the extended math-function surface: `erf`, `tgamma`,
//! `expm1`, `log1p`, inverse hyperbolics and `rsqrt` — functions beyond
//! the paper's test grammar whose vendor implementations also diverge
//! (both `erf` and `tgamma` are written from scratch here in two vendor
//! flavours; Rust's `std` has neither).
//!
//! Run with: `cargo run --release --example extended_functions`

use gpu_numerics::difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use gpu_numerics::difftest::report::{render_digest, render_per_level};
use gpu_numerics::gpusim::mathlib::MathFunc;
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::Precision;

fn main() {
    // 1. the pointwise divergence profile of the new functions
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    println!("pointwise ULP divergence over a moderate-argument sweep:");
    for f in [
        MathFunc::Erf,
        MathFunc::Tgamma,
        MathFunc::Expm1,
        MathFunc::Log1p,
        MathFunc::Asinh,
        MathFunc::Rsqrt,
    ] {
        let mut diffs = 0u32;
        let mut max_ulp = 0u64;
        let n = 4000;
        for i in 0..n {
            let x = 0.01 + (i as f64) * 0.005;
            let a = nv.mathlib().call_f64(f, x, 0.0);
            let b = amd.mathlib().call_f64(f, x, 0.0);
            if let Some(d) = gpu_numerics::fpcore::ulp::ulp_diff_f64(a, b) {
                if d > 0 {
                    diffs += 1;
                    max_ulp = max_ulp.max(d);
                }
            }
        }
        println!("  {f:<8} {diffs:>5}/{n} args differ, max {max_ulp} ulp");
    }

    // 2. a campaign whose grammar draws from the full function surface
    let mut config = CampaignConfig::default_for(Precision::F64, TestMode::Direct);
    config.gen = GenConfig::extended(Precision::F64);
    config.n_programs = 250;
    println!("\nrunning an extended-surface campaign ({} programs)…", config.n_programs);
    let report = run_campaign(&config);
    println!("{}", render_digest(&report));
    println!(
        "{}",
        render_per_level(&report, "discrepancies per optimization option (extended grammar)")
    );
    assert!(report.total_discrepancies() > 0);
}
