//! Quickstart: generate one random test (paper Fig. 2 style), emit it as
//! CUDA and HIP source, compile it with both simulated toolchains at every
//! optimization level, run it on both simulated GPUs, and report any
//! numerical discrepancy.
//!
//! Run with: `cargo run --example quickstart`

use gpu_numerics::difftest::campaign::TestMode;
use gpu_numerics::difftest::compare_runs;
use gpu_numerics::difftest::metadata::build_side;
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::emit::{emit, Dialect};
use gpu_numerics::progen::gen::generate_program;
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::inputs::generate_inputs;
use gpu_numerics::progen::Precision;

fn main() {
    // 1. generate a random FP64 test program (deterministic in the seed)
    let config = GenConfig::varity_default(Precision::F64);
    let program = generate_program(&config, 31415, 34);
    println!("=== generated test {} ===\n", program.id);
    println!("--- CUDA source (.cu) ---\n{}", emit(&program, Dialect::Cuda));
    println!("--- HIP source (.hip) ---\n{}", emit(&program, Dialect::Hip));

    // 2. generate random inputs the way Varity does
    let inputs = generate_inputs(&program, 31415, 5);
    println!("--- inputs ---");
    for (k, input) in inputs.iter().enumerate() {
        println!("input {k}: {}", input.render(program.precision));
    }

    // 3. differential testing: same program, same input, same level,
    //    two toolchains, two GPUs
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    println!("\n--- differential runs ---");
    let mut found = 0;
    for level in OptLevel::ALL {
        let nv_ir = build_side(&program, Toolchain::Nvcc, level, TestMode::Direct);
        let amd_ir = build_side(&program, Toolchain::Hipcc, level, TestMode::Direct);
        for (k, input) in inputs.iter().enumerate() {
            let rn = execute(&nv_ir, &nv, input).expect("nvcc side runs");
            let ra = execute(&amd_ir, &amd, input).expect("hipcc side runs");
            match compare_runs(&rn.value, &ra.value) {
                Some(d) => {
                    found += 1;
                    println!(
                        "{:>6} input {k}: DISCREPANCY [{}]  nvcc={}  hipcc={}",
                        level.label(),
                        d.class,
                        rn.value.format_exact(),
                        ra.value.format_exact()
                    );
                }
                None => println!(
                    "{:>6} input {k}: consistent ({})",
                    level.label(),
                    rn.value.format_exact()
                ),
            }
        }
    }
    println!("\n{found} discrepancies across {} runs", OptLevel::ALL.len() * inputs.len() * 2);
}
