//! Automatic test-case minimization: hunt for a discrepancy in a random
//! campaign slice, then shrink the failing program to a minimal reproducer
//! (the "small test" the paper highlights as the framework's key
//! deliverable; automated reduction is its stated future work).
//!
//! Run with: `cargo run --release --example reduce_failure`

use gpu_numerics::difftest::campaign::TestMode;
use gpu_numerics::difftest::compare_runs;
use gpu_numerics::difftest::metadata::build_side;
use gpu_numerics::difftest::reduce::{discrepancy_check, reduce_program};
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind, QuirkSet};
use gpu_numerics::progen::emit::emit_kernel;
use gpu_numerics::progen::gen::generate_program;
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::inputs::generate_inputs;
use gpu_numerics::progen::Precision;

fn main() {
    let gen_cfg = GenConfig::varity_default(Precision::F64);
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);

    // scan programs until a discrepancy shows up
    'outer: for index in 0..5000u64 {
        let program = generate_program(&gen_cfg, 31415, index);
        let inputs = generate_inputs(&program, 31415, 7);
        for level in OptLevel::ALL {
            let nv_ir = build_side(&program, Toolchain::Nvcc, level, TestMode::Direct);
            let amd_ir = build_side(&program, Toolchain::Hipcc, level, TestMode::Direct);
            for input in &inputs {
                let (Ok(rn), Ok(ra)) = (execute(&nv_ir, &nv, input), execute(&amd_ir, &amd, input))
                else {
                    continue;
                };
                if let Some(d) = compare_runs(&rn.value, &ra.value) {
                    println!(
                        "found a {} discrepancy in {} at {} \
                         (nvcc={}, hipcc={})\n",
                        d.class,
                        program.id,
                        level.label(),
                        rn.value.format_exact(),
                        ra.value.format_exact()
                    );
                    println!("--- original kernel ({} stmts) ---", program.stmt_count());
                    println!("{}", emit_kernel(&program));

                    let check =
                        discrepancy_check(input.clone(), level, TestMode::Direct, QuirkSet::all());
                    let red = reduce_program(&program, check);
                    println!(
                        "--- reduced kernel ({} stmts, {} shrink steps) ---",
                        red.final_stmts, red.steps
                    );
                    println!("{}", emit_kernel(&red.program));
                    println!("failure-inducing input: {}", input.render(program.precision));
                    assert!(red.final_stmts <= red.original_stmts);
                    break 'outer;
                }
            }
        }
    }
}
