//! SIMT extension demo: a multi-thread kernel where only *some* threads
//! diverge between the two platforms.
//!
//! The paper's tests are single-thread by design; this extension runs a
//! `threadIdx.x`-dependent kernel over a thread block on both simulated
//! GPUs and compares per thread — the pattern an acceptance test for a new
//! system would use to localize a divergence to specific lanes.
//!
//! Run with: `cargo run --example simt_threads`

use gpu_numerics::difftest::compare::compare_grids;
use gpu_numerics::gpucc::interp::{execute_grid, ExecValue};
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::inputs::{InputSet, InputValue};
use gpu_numerics::progen::parser::parse_kernel;

const KERNEL: &str = r#"
__global__ void compute(double comp, double var_2, double var_3) {
  comp += fmod(var_2 * (1.0 + ((double)threadIdx.x) * 1.0E18), var_3);
  printf("%.17g\n", comp);
}
"#;

fn main() {
    let program = parse_kernel(KERNEL, "simt_demo").expect("kernel parses");
    println!("kernel:\n{KERNEL}");

    let input = InputSet {
        values: vec![
            InputValue::Float(0.0),    // comp
            InputValue::Float(1.0e12), // var_2
            InputValue::Float(0.37),   // var_3
        ],
    };
    let block_dim = 8;

    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let nv_ir = compile(&program, Toolchain::Nvcc, OptLevel::O0, false);
    let amd_ir = compile(&program, Toolchain::Hipcc, OptLevel::O0, false);

    let rn: Vec<ExecValue> = execute_grid(&nv_ir, &nv, &input, block_dim)
        .expect("nvcc grid runs")
        .into_iter()
        .map(|r| r.value)
        .collect();
    let ra: Vec<ExecValue> = execute_grid(&amd_ir, &amd, &input, block_dim)
        .expect("hipcc grid runs")
        .into_iter()
        .map(|r| r.value)
        .collect();

    println!("tid   nvcc result              hipcc result             verdict");
    let diverging = compare_grids(&rn, &ra).expect("both sides ran the same block size");
    for tid in 0..block_dim as usize {
        let verdict = diverging
            .iter()
            .find(|d| d.thread == tid as u32)
            .map(|d| format!("DISCREPANCY [{}]", d.discrepancy.class))
            .unwrap_or_else(|| "consistent".into());
        println!("{tid:<6}{:<25}{:<25}{verdict}", rn[tid].format_exact(), ra[tid].format_exact());
    }
    println!(
        "\n{} of {block_dim} threads diverge: thread 0's fmod operand ratio\n\
         stays below 2^53 (both platforms compute the exact remainder);\n\
         every other thread crosses into the regime where the AMD-like\n\
         chunked fmod drifts from the NVIDIA-like bit-exact one.",
        diverging.len()
    );
    assert!(!diverging.is_empty() && diverging.len() < block_dim as usize);
}
