//! # gpu-numerics — differential testing of simulated GPU numerics
//!
//! Umbrella crate for the workspace reproducing *"Testing GPU Numerics:
//! Finding Numerical Differences Between NVIDIA and AMD GPUs"* (SC 2024
//! workshops). See the repository README for the architecture diagram,
//! `DESIGN.md` for the hardware-substitution rationale and per-experiment
//! index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## The five-minute tour
//!
//! ```
//! use gpu_numerics::difftest::campaign::TestMode;
//! use gpu_numerics::difftest::compare_runs;
//! use gpu_numerics::difftest::metadata::build_side;
//! use gpu_numerics::gpucc::interp::execute;
//! use gpu_numerics::gpucc::pipeline::{OptLevel, Toolchain};
//! use gpu_numerics::gpusim::{Device, DeviceKind};
//! use gpu_numerics::progen::gen::generate_program;
//! use gpu_numerics::progen::grammar::GenConfig;
//! use gpu_numerics::progen::inputs::generate_input;
//! use gpu_numerics::progen::Precision;
//!
//! // 1. a random numerical test program (deterministic in the seed)
//! let cfg = GenConfig::varity_default(Precision::F64);
//! let program = generate_program(&cfg, 2024, 0);
//! let input = generate_input(&program, 2024, 0);
//!
//! // 2. the same source, compiled by both simulated toolchains
//! let nv_ir = build_side(&program, Toolchain::Nvcc, OptLevel::O3, TestMode::Direct);
//! let amd_ir = build_side(&program, Toolchain::Hipcc, OptLevel::O3, TestMode::Direct);
//!
//! // 3. executed on both simulated GPUs with the same input
//! let nv = Device::new(DeviceKind::NvidiaLike);
//! let amd = Device::new(DeviceKind::AmdLike);
//! let rn = execute(&nv_ir, &nv, &input).unwrap();
//! let ra = execute(&amd_ir, &amd, &input).unwrap();
//!
//! // 4. compared with the paper's classification rules
//! match compare_runs(&rn.value, &ra.value) {
//!     Some(d) => println!("discrepancy [{}]", d.class),
//!     None => println!("consistent: {}", rn.value.format_exact()),
//! }
//! ```
//!
//! ## Crate map
//!
//! | re-export | subsystem |
//! |---|---|
//! | [`fpcore`] | IEEE-754 substrate: classification, ULP, exceptions, `%.17g` |
//! | [`progen`] | Varity-style generator, inputs, CUDA/HIP emission, parser |
//! | [`gpusim`] | the two simulated devices and vendor math libraries |
//! | [`gpucc`] | the two simulated optimizing compilers and the interpreter |
//! | [`hipify`] | CUDA → HIP source translation |
//! | [`difftest`] | campaigns, classification, metadata, reduction, isolation |

pub use difftest;
pub use fpcore;
pub use gpucc;
pub use gpusim;
pub use hipify;
pub use progen;
