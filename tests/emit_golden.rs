//! Golden snapshots of the emitters: byte-exact CUDA and HIP renderings
//! of three hand-written kernels, plus the HIPIFY translation contract.
//!
//! The emitted text is an external interface twice over — the parser
//! reads it back (the oracle's round-trip check) and HIPIFY rewrites it
//! (paper §III-D) — so any formatting drift is an API break, not a
//! cosmetic change. The snapshots live in `tests/golden/*.txt`.
//!
//! To refresh after an *intentional* emitter change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test emit_golden
//! git diff tests/golden/   # audit every byte before committing
//! ```
//!
//! A missing snapshot is bootstrapped to disk and the test fails once,
//! telling you to commit the new file.

use progen::ast::{
    AssignOp, BinOp, CmpOp, Cond, Expr, LValue, Param, ParamType, Precision, Program, Stmt,
};
use progen::emit::{emit, Dialect};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let expected = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(_) => {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, actual).unwrap();
            panic!(
                "golden file {} was missing; bootstrapped from current output — \
                 review and commit it",
                path.display()
            );
        }
    };
    assert_eq!(
        actual,
        expected,
        "emitted source drifted from {}; if intentional, refresh with \
         `UPDATE_GOLDEN=1 cargo test --test emit_golden` and audit the diff",
        path.display()
    );
}

fn float_param(name: &str) -> Param {
    Param { name: name.into(), ty: ParamType::Float }
}

/// Minimal scalar kernel: one compound assignment with a literal.
fn program_a() -> Program {
    Program {
        id: "golden-a".into(),
        precision: Precision::F64,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::AddAssign,
            value: Expr::bin(BinOp::Mul, Expr::Var("var_2".into()), Expr::Lit(1.5)),
        }],
    }
}

/// Control flow + array traffic: exercises the `if`/`for` indentation,
/// indexed loads/stores, and the host-side malloc/memcpy/free protocol.
fn program_b() -> Program {
    Program {
        id: "golden-b".into(),
        precision: Precision::F64,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            Param { name: "var_2".into(), ty: ParamType::FloatArray },
            float_param("var_3"),
        ],
        body: vec![
            Stmt::If {
                cond: Cond {
                    op: CmpOp::Lt,
                    lhs: Expr::Var("comp".into()),
                    rhs: Expr::Var("var_3".into()),
                },
                body: vec![Stmt::Assign {
                    target: LValue::Var("comp".into()),
                    op: AssignOp::AddAssign,
                    value: Expr::Var("var_3".into()),
                }],
            },
            Stmt::For {
                var: "i".into(),
                bound: "var_1".into(),
                body: vec![
                    Stmt::Assign {
                        target: LValue::Index("var_2".into(), "i".into()),
                        op: AssignOp::Set,
                        value: Expr::bin(
                            BinOp::Mul,
                            Expr::Var("comp".into()),
                            Expr::Var("var_3".into()),
                        ),
                    },
                    Stmt::Assign {
                        target: LValue::Var("comp".into()),
                        op: AssignOp::AddAssign,
                        value: Expr::Index("var_2".into(), "i".into()),
                    },
                ],
            },
        ],
    }
}

/// FP32 kernel: `float` types and `F`-suffixed literals.
fn program_c() -> Program {
    Program {
        id: "golden-c".into(),
        precision: Precision::F32,
        params: vec![
            float_param("comp"),
            Param { name: "var_1".into(), ty: ParamType::Int },
            float_param("var_2"),
        ],
        body: vec![Stmt::Assign {
            target: LValue::Var("comp".into()),
            op: AssignOp::MulAssign,
            value: Expr::bin(BinOp::Add, Expr::Var("var_2".into()), Expr::Lit(1.5)),
        }],
    }
}

#[test]
fn cuda_emission_matches_golden() {
    check("a_cuda.txt", &emit(&program_a(), Dialect::Cuda));
    check("b_cuda.txt", &emit(&program_b(), Dialect::Cuda));
    check("c_cuda.txt", &emit(&program_c(), Dialect::Cuda));
}

#[test]
fn hip_emission_matches_golden() {
    check("a_hip.txt", &emit(&program_a(), Dialect::Hip));
    check("b_hip.txt", &emit(&program_b(), Dialect::Hip));
    check("c_hip.txt", &emit(&program_c(), Dialect::Hip));
}

#[test]
fn hipify_of_cuda_golden_is_byte_identical_to_hip_golden() {
    // the HIPIFY golden IS the HIP golden: translating our emitted CUDA
    // must reproduce native HIP emission exactly (launch rewrite, API
    // renames, header injection) — the property the hipified campaign
    // mode relies on
    for (p, hip_name) in
        [(program_a(), "a_hip.txt"), (program_b(), "b_hip.txt"), (program_c(), "c_hip.txt")]
    {
        let translated = hipify::hipify(&emit(&p, Dialect::Cuda));
        check(hip_name, &translated.source);
        assert_eq!(translated.launches_rewritten, 1, "{}", p.id);
        assert!(translated.warnings.is_empty(), "{}: {:?}", p.id, translated.warnings);
    }
}

#[test]
fn golden_sources_parse_back() {
    // the kernel section of every snapshot is parser-compatible — the
    // same guarantee the oracle's round-trip check enforces in bulk
    for p in [program_a(), program_b(), program_c()] {
        let src = emit(&p, Dialect::Cuda);
        let back = progen::parser::parse_kernel(&src, &p.id).expect("golden parses");
        assert_eq!(back.body, p.body, "{}", p.id);
    }
}
