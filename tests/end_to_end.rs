//! End-to-end integration tests spanning the whole pipeline:
//! generate → emit → (hipify) → parse → compile → execute → compare.

use gpu_numerics::difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use gpu_numerics::difftest::compare_runs;
use gpu_numerics::difftest::metadata::build_side;
use gpu_numerics::difftest::outcome::DiscrepancyClass;
use gpu_numerics::fpcore::classify::Outcome;
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind, QuirkSet};
use gpu_numerics::hipify::hipify;
use gpu_numerics::progen::emit::{emit, Dialect};
use gpu_numerics::progen::gen::generate_program;
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::inputs::generate_inputs;
use gpu_numerics::progen::parser::parse_kernel;
use gpu_numerics::progen::Precision;

/// The full source-level round trip is semantics-preserving: running the
/// AST directly and running the parse(emit(AST)) result give identical
/// bits on every device, level and input.
#[test]
fn source_roundtrip_preserves_semantics() {
    let cfg = GenConfig::varity_default(Precision::F64);
    let nv = Device::new(DeviceKind::NvidiaLike);
    for i in 0..25 {
        let program = generate_program(&cfg, 77, i);
        let src = emit(&program, Dialect::Cuda);
        let reparsed = parse_kernel(&src, &program.id).expect("emitted source parses");
        let inputs = generate_inputs(&program, 77, 3);
        for level in [OptLevel::O0, OptLevel::O3, OptLevel::O3Fm] {
            let ir_direct = compile(&program, Toolchain::Nvcc, level, false);
            let ir_text = compile(&reparsed, Toolchain::Nvcc, level, false);
            for input in &inputs {
                let a = execute(&ir_direct, &nv, input).unwrap();
                let b = execute(&ir_text, &nv, input).unwrap();
                assert!(
                    a.value.bit_eq(&b.value),
                    "program {i} level {level}: {} vs {}",
                    a.value.format_exact(),
                    b.value.format_exact()
                );
            }
        }
    }
}

/// HIPIFY conversion preserves the kernel itself: at equal compiler
/// settings (contraction off ⇒ compare at O1 where both contract anyway),
/// the hipified pipeline and the native-HIP pipeline agree bit-for-bit at
/// every level above O0.
#[test]
fn hipified_and_native_hip_agree_above_o0() {
    let cfg = GenConfig::varity_default(Precision::F64);
    let amd = Device::new(DeviceKind::AmdLike);
    for i in 0..20 {
        let program = generate_program(&cfg, 99, i);
        let inputs = generate_inputs(&program, 99, 3);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O3Fm] {
            let direct = build_side(&program, Toolchain::Hipcc, level, TestMode::Direct);
            let converted = build_side(&program, Toolchain::Hipcc, level, TestMode::Hipified);
            for input in &inputs {
                let a = execute(&direct, &amd, input).unwrap();
                let b = execute(&converted, &amd, input).unwrap();
                assert!(
                    a.value.bit_eq(&b.value),
                    "program {i} level {level}: direct {} vs hipified {}",
                    a.value.format_exact(),
                    b.value.format_exact()
                );
            }
        }
    }
}

/// The hipify text translator and the native HIP emitter produce sources
/// that parse to the identical AST.
#[test]
fn hipify_text_path_matches_native_emission() {
    let cfg = GenConfig::varity_default(Precision::F32);
    for i in 0..15 {
        let program = generate_program(&cfg, 11, i);
        let cuda = emit(&program, Dialect::Cuda);
        let hip_native = emit(&program, Dialect::Hip);
        let converted = hipify(&cuda);
        assert!(converted.warnings.is_empty(), "{:?}", converted.warnings);
        let a = parse_kernel(&hip_native, &program.id).unwrap();
        let b = parse_kernel(&converted.source, &program.id).unwrap();
        assert_eq!(a, b, "program {i}");
    }
}

/// Identical toolchain + device ⇒ identical results at every level
/// (differential self-consistency).
#[test]
fn self_comparison_never_reports_discrepancies() {
    let cfg = GenConfig::varity_default(Precision::F32);
    let amd = Device::new(DeviceKind::AmdLike);
    for i in 0..15 {
        let program = generate_program(&cfg, 5, i);
        let inputs = generate_inputs(&program, 5, 3);
        for level in OptLevel::ALL {
            let ir = compile(&program, Toolchain::Hipcc, level, false);
            for input in &inputs {
                let a = execute(&ir, &amd, input).unwrap();
                let b = execute(&ir, &amd, input).unwrap();
                assert!(compare_runs(&a.value, &b.value).is_none());
            }
        }
    }
}

/// Ablation: with every divergence mechanism disabled, a full FP64
/// campaign (including fast-math levels on the *same pipelines*) still
/// reports zero O0–O3 discrepancies.
#[test]
fn ablation_quirkless_campaign_is_clean_at_o0_to_o3() {
    let mut cfg = CampaignConfig::default_for(Precision::F64, TestMode::Direct);
    cfg.n_programs = 60;
    cfg.quirks = QuirkSet::none();
    cfg.levels = vec![OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];
    let report = run_campaign(&cfg);
    for (level, stats) in &report.per_level {
        // contraction preferences still differ between the toolchains, so
        // O1+ may legitimately diverge even on identical devices; O0 (and
        // hence any math-library-only effect) must be silent
        if *level == OptLevel::O0 {
            assert_eq!(stats.discrepancies, 0, "quirkless O0 must be clean");
        }
    }
}

/// Ablation: disabling only the fmod mechanism removes fmod-rooted
/// discrepancies but keeps the ceil mechanism alive.
#[test]
fn ablation_mechanisms_are_independent() {
    use gpu_numerics::gpusim::mathlib::MathFunc;
    let mut only_ceil = QuirkSet::none();
    only_ceil.ceil_tiny = true;
    let dev_nv = Device::with_quirks(DeviceKind::NvidiaLike, only_ceil);
    let dev_amd = Device::with_quirks(DeviceKind::AmdLike, only_ceil);
    // fmod agrees now
    let (x, y) = (1.5917195493481116e289, 1.5793e-307);
    assert_eq!(
        dev_nv.mathlib().call_f64(MathFunc::Fmod, x, y).to_bits(),
        dev_amd.mathlib().call_f64(MathFunc::Fmod, x, y).to_bits()
    );
    // ceil still diverges
    assert_ne!(
        dev_nv.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0),
        dev_amd.mathlib().call_f64(MathFunc::Ceil, 1.5955e-125, 0.0)
    );
}

/// FP32 campaigns show the paper's signature: the fast-math level
/// dominates the discrepancy count.
#[test]
fn fp32_fast_math_dominates() {
    let cfg = CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(120);
    let report = run_campaign(&cfg);
    let get = |l: OptLevel| {
        report.per_level.iter().find(|(lv, _)| *lv == l).map(|(_, s)| s.discrepancies).unwrap()
    };
    let fm = get(OptLevel::O3Fm);
    let o0 = get(OptLevel::O0);
    assert!(fm > o0 * 3, "O3_FM ({fm}) must dwarf O0 ({o0}) for FP32");
}

/// The seven discrepancy classes and four outcomes cover every observed
/// comparison: class counts and adjacency cells always reconcile.
#[test]
fn classification_is_total_and_consistent() {
    let cfg = CampaignConfig::default_for(Precision::F32, TestMode::Direct).with_programs(80);
    let report = run_campaign(&cfg);
    for (_, s) in &report.per_level {
        assert_eq!(s.by_class.iter().sum::<u64>(), s.discrepancies);
        let adj: u64 = s.adjacency.iter().flatten().sum();
        assert_eq!(adj, s.discrepancies);
        // same-outcome off-Num diagonal cells must be empty (sign-only
        // differences are excluded)
        for o in [Outcome::Nan, Outcome::Inf, Outcome::Zero] {
            assert_eq!(s.adjacency[o.index()][o.index()], 0, "{o}");
        }
        // the NumNum class count equals the Num/Num diagonal
        assert_eq!(
            s.by_class[DiscrepancyClass::NumNum.index()],
            s.adjacency[Outcome::Num.index()][Outcome::Num.index()]
        );
    }
}

/// Exception flags surface through the public API (Table II machinery).
#[test]
fn exceptions_are_reported_end_to_end() {
    use gpu_numerics::fpcore::exceptions::FpException;
    let src = "__global__ void compute(double comp, double var_2) {\n\
               comp += 1.0 / var_2; comp += var_2 * 1.7976E308; }";
    let program = parse_kernel(src, "exc").unwrap();
    let ir = compile(&program, Toolchain::Nvcc, OptLevel::O0, false);
    let dev = Device::new(DeviceKind::NvidiaLike);
    let input = gpu_numerics::progen::inputs::InputSet {
        values: vec![
            gpu_numerics::progen::inputs::InputValue::Float(0.0),
            gpu_numerics::progen::inputs::InputValue::Float(0.0),
        ],
    };
    let r = execute(&ir, &dev, &input).unwrap();
    assert!(r.exceptions.is_set(FpException::DivideByZero));

    let input2 = gpu_numerics::progen::inputs::InputSet {
        values: vec![
            gpu_numerics::progen::inputs::InputValue::Float(0.0),
            gpu_numerics::progen::inputs::InputValue::Float(2.0),
        ],
    };
    let r = execute(&ir, &dev, &input2).unwrap();
    assert!(r.exceptions.is_set(FpException::Overflow));
}
