//! Golden regression test: exact discrepancy counts for a fixed
//! 100-program campaign at seed 2024.
//!
//! Every stage of the pipeline is deterministic, so these counts are
//! stable across runs and platforms. If an *intentional* change to a
//! divergence mechanism, pass pipeline, generator or input distribution
//! moves them, update the constants here **and** re-run
//! `cargo run --release -p bench --bin tables -- --full` to refresh
//! EXPERIMENTS.md; an *unintentional* change failing this test is a
//! calibration regression.

use gpu_numerics::difftest::campaign::{run_campaign, CampaignConfig, TestMode};
use gpu_numerics::progen::Precision;

const N_PROGRAMS: usize = 100;
const SEED: u64 = 2024;

fn counts(precision: Precision, mode: TestMode) -> (Vec<u64>, u64) {
    let mut cfg = CampaignConfig::default_for(precision, mode).with_programs(N_PROGRAMS);
    cfg.seed = SEED;
    let r = run_campaign(&cfg);
    (r.per_level.iter().map(|(_, s)| s.discrepancies).collect(), r.total_discrepancies())
}

#[test]
fn golden_fp64_direct() {
    let (per_level, total) = counts(Precision::F64, TestMode::Direct);
    assert_eq!(per_level, vec![6, 8, 8, 8, 18], "per-level (O0..O3_FM)");
    assert_eq!(total, 48);
}

#[test]
fn golden_fp64_hipify() {
    let (per_level, total) = counts(Precision::F64, TestMode::Hipified);
    assert_eq!(per_level, vec![9, 8, 8, 8, 18], "per-level (O0..O3_FM)");
    assert_eq!(total, 51);
}

#[test]
fn golden_fp32_direct() {
    let (per_level, total) = counts(Precision::F32, TestMode::Direct);
    assert_eq!(per_level, vec![5, 8, 8, 8, 78], "per-level (O0..O3_FM)");
    assert_eq!(total, 107);
}
