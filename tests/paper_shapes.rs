//! Shape tests: the qualitative claims of the paper's evaluation section,
//! checked against a freshly run (scaled-down) campaign. These are the
//! "does the reproduction reproduce" tests; EXPERIMENTS.md records the
//! corresponding full-scale numbers.

use gpu_numerics::difftest::campaign::{run_campaign, CampaignConfig, CampaignReport, TestMode};
use gpu_numerics::gpucc::pipeline::OptLevel;
use gpu_numerics::progen::Precision;
use std::sync::OnceLock;

const N_PROGRAMS: usize = 250;

fn fp64() -> &'static CampaignReport {
    static R: OnceLock<CampaignReport> = OnceLock::new();
    R.get_or_init(|| {
        run_campaign(
            &CampaignConfig::default_for(Precision::F64, TestMode::Direct)
                .with_programs(N_PROGRAMS),
        )
    })
}

fn fp64_hipify() -> &'static CampaignReport {
    static R: OnceLock<CampaignReport> = OnceLock::new();
    R.get_or_init(|| {
        run_campaign(
            &CampaignConfig::default_for(Precision::F64, TestMode::Hipified)
                .with_programs(N_PROGRAMS),
        )
    })
}

fn fp32() -> &'static CampaignReport {
    static R: OnceLock<CampaignReport> = OnceLock::new();
    R.get_or_init(|| {
        run_campaign(
            &CampaignConfig::default_for(Precision::F32, TestMode::Direct)
                .with_programs(N_PROGRAMS),
        )
    })
}

fn level(r: &CampaignReport, l: OptLevel) -> u64 {
    r.per_level.iter().find(|(lv, _)| *lv == l).map(|(_, s)| s.discrepancies).unwrap()
}

/// Table IV shape: every campaign finds discrepancies, at sub-10% rates.
#[test]
fn campaigns_find_discrepancies_at_plausible_rates() {
    for (name, r) in [("FP64", fp64()), ("HIPIFY", fp64_hipify()), ("FP32", fp32())] {
        let pct = r.discrepancy_pct();
        assert!(pct > 0.05 && pct < 20.0, "{name}: {pct:.2}% outside plausible band");
    }
}

/// Table IV shape: FP32 discrepancy rate exceeds FP64's (9.00% vs 0.98%
/// in the paper).
#[test]
fn fp32_rate_exceeds_fp64_rate() {
    assert!(
        fp32().discrepancy_pct() > fp64().discrepancy_pct() * 1.5,
        "FP32 {:.2}% vs FP64 {:.2}%",
        fp32().discrepancy_pct(),
        fp64().discrepancy_pct()
    );
}

/// Table IV shape: HIPIFY-converted FP64 shows at least as many
/// discrepancies as direct FP64 (1.10% vs 0.98% in the paper).
#[test]
fn hipify_rate_is_at_least_direct_rate() {
    assert!(
        fp64_hipify().total_discrepancies() >= fp64().total_discrepancies(),
        "HIPIFY {} vs direct {}",
        fp64_hipify().total_discrepancies(),
        fp64().total_discrepancies()
    );
}

/// Tables V/VII/IX shape: O1, O2 and O3 report identical counts.
#[test]
fn o1_o2_o3_counts_are_identical() {
    for r in [fp64(), fp64_hipify(), fp32()] {
        let o1 = level(r, OptLevel::O1);
        assert_eq!(o1, level(r, OptLevel::O2));
        assert_eq!(o1, level(r, OptLevel::O3));
    }
}

/// Tables V/IX shape: O3_FM is the worst level, catastrophically so for
/// FP32 (13,877 vs ≤90 in the paper).
#[test]
fn fast_math_is_the_worst_level() {
    for r in [fp64(), fp64_hipify(), fp32()] {
        let fm = level(r, OptLevel::O3Fm);
        for l in [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3] {
            assert!(
                fm >= level(r, l),
                "{}: O3_FM={} < {}={}",
                r.config.precision.label(),
                fm,
                l.label(),
                level(r, l)
            );
        }
    }
    assert!(
        level(fp32(), OptLevel::O3Fm) > 5 * level(fp32(), OptLevel::O0),
        "FP32 O3_FM must explode: {} vs {}",
        level(fp32(), OptLevel::O3Fm),
        level(fp32(), OptLevel::O0)
    );
}

/// Table V shape: O1 ≥ O0 for direct FP64 (contraction adds divergence:
/// 440 → 489 in the paper).
#[test]
fn fp64_o1_at_least_o0() {
    assert!(level(fp64(), OptLevel::O1) >= level(fp64(), OptLevel::O0));
}

/// Table V shape: Num–Num dominates the FP64 classes at every non-FM
/// level (353/440 at O0 in the paper).
#[test]
fn num_num_dominates_fp64() {
    use gpu_numerics::difftest::outcome::DiscrepancyClass;
    for (l, s) in &fp64().per_level {
        if *l == OptLevel::O3Fm {
            continue;
        }
        let numnum = s.by_class[DiscrepancyClass::NumNum.index()];
        assert!(
            numnum * 2 >= s.discrepancies,
            "{}: NumNum {numnum} of {}",
            l.label(),
            s.discrepancies
        );
    }
}

/// Q2 shape: FP64 NaN–Zero / NaN–Num discrepancies are rare outside the
/// fast-math level (the paper found none at all in 247,500 runs; our
/// simulated mechanisms produce a small residue — see EXPERIMENTS.md).
#[test]
fn fp64_nan_zero_and_nan_num_are_rare_outside_fast_math() {
    use gpu_numerics::difftest::outcome::DiscrepancyClass;
    for (l, s) in &fp64().per_level {
        if *l == OptLevel::O3Fm {
            continue;
        }
        let nz = s.by_class[DiscrepancyClass::NanZero.index()];
        let nn = s.by_class[DiscrepancyClass::NanNum.index()];
        assert!(
            (nz + nn) * 10 <= s.discrepancies.max(1),
            "{}: NaN-Zero {nz} + NaN-Num {nn} of {}",
            l.label(),
            s.discrepancies
        );
    }
}

/// Q2 shape: across the three campaigns, every one of the seven classes
/// is observed somewhere (the paper observed all classes overall).
#[test]
fn all_seven_classes_are_observed_somewhere() {
    let mut totals = [0u64; 7];
    for r in [fp64(), fp64_hipify(), fp32()] {
        for (i, v) in r.class_totals().iter().enumerate() {
            totals[i] += v;
        }
    }
    let observed = totals.iter().filter(|v| **v > 0).count();
    assert!(observed >= 6, "expected ≥6 of 7 classes at this scale, saw {observed}: {totals:?}");
}

/// HIPIFY shape: the conversion introduces extra O0 discrepancies
/// (Table VII O0 = 494 > Table V O0 = 440).
#[test]
fn hipify_adds_o0_discrepancies() {
    assert!(
        level(fp64_hipify(), OptLevel::O0) > level(fp64(), OptLevel::O0),
        "HIPIFY O0 {} vs direct O0 {}",
        level(fp64_hipify(), OptLevel::O0),
        level(fp64(), OptLevel::O0)
    );
}
