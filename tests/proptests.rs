//! Cross-crate property tests: pipeline invariants under random programs
//! and inputs drawn via proptest (independent of the campaign's own RNG).

use gpu_numerics::difftest::campaign::TestMode;
use gpu_numerics::difftest::metadata::build_side;
use gpu_numerics::gpucc::interp::execute;
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::emit::emit_kernel;
use gpu_numerics::progen::gen::generate_program;
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::inputs::generate_input;
use gpu_numerics::progen::parser::parse_kernel;
use gpu_numerics::progen::Precision;
use proptest::prelude::*;

fn precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::F64), Just(Precision::F32)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// emit → parse is the identity on every generated program.
    #[test]
    fn emit_parse_roundtrip(seed in any::<u64>(), index in 0u64..500, prec in precision()) {
        let cfg = GenConfig::varity_default(prec);
        let p = generate_program(&cfg, seed, index);
        let src = emit_kernel(&p);
        let back = parse_kernel(&src, &p.id);
        prop_assert!(back.is_ok(), "{src}");
        prop_assert_eq!(back.unwrap(), p);
    }

    /// every generated program executes without error on every device,
    /// level and toolchain combination.
    #[test]
    fn generated_programs_always_execute(
        seed in any::<u64>(),
        index in 0u64..200,
        prec in precision(),
        k in 0u64..5,
    ) {
        let cfg = GenConfig::varity_default(prec);
        let p = generate_program(&cfg, seed, index);
        let input = generate_input(&p, seed, k);
        for tc in Toolchain::ALL {
            let dev = Device::new(match tc {
                Toolchain::Nvcc => DeviceKind::NvidiaLike,
                Toolchain::Hipcc => DeviceKind::AmdLike,
            });
            for level in OptLevel::ALL {
                let ir = compile(&p, tc, level, false);
                let r = execute(&ir, &dev, &input);
                prop_assert!(r.is_ok(), "{tc} {level}: {:?}", r.err());
            }
        }
    }

    /// optimization never *increases* the executed cost on the same
    /// toolchain (the passes only remove or fuse work).
    #[test]
    fn optimization_is_cost_monotone(seed in any::<u64>(), index in 0u64..100) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, seed, index);
        let input = generate_input(&p, seed, 0);
        let dev = Device::new(DeviceKind::NvidiaLike);
        let o0 = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
        let o3 = compile(&p, Toolchain::Nvcc, OptLevel::O3, false);
        let (r0, r3) = (execute(&o0, &dev, &input), execute(&o3, &dev, &input));
        if let (Ok(r0), Ok(r3)) = (r0, r3) {
            prop_assert!(
                r3.cost_slots <= r0.cost_slots,
                "O3 raw cost {} > O0 raw cost {}",
                r3.cost_slots,
                r0.cost_slots
            );
        }
    }

    /// the hipified build path never alters nvcc-side results (the flag
    /// only changes hipcc behaviour).
    #[test]
    fn hipified_flag_does_not_affect_nvcc(seed in any::<u64>(), index in 0u64..100) {
        let cfg = GenConfig::varity_default(Precision::F64);
        let p = generate_program(&cfg, seed, index);
        let input = generate_input(&p, seed, 0);
        let dev = Device::new(DeviceKind::NvidiaLike);
        for level in OptLevel::ALL {
            let a = build_side(&p, Toolchain::Nvcc, level, TestMode::Direct);
            let b = build_side(&p, Toolchain::Nvcc, level, TestMode::Hipified);
            let (ra, rb) = (execute(&a, &dev, &input), execute(&b, &dev, &input));
            if let (Ok(ra), Ok(rb)) = (ra, rb) {
                prop_assert!(ra.value.bit_eq(&rb.value));
            }
        }
    }

    /// O2 and O3 results are always bit-identical to O1 on the same
    /// toolchain and device (the paper's identical-counts observation,
    /// strengthened to per-run equality).
    #[test]
    fn o1_o2_o3_results_bitwise_equal(
        seed in any::<u64>(),
        index in 0u64..100,
        prec in precision(),
    ) {
        let cfg = GenConfig::varity_default(prec);
        let p = generate_program(&cfg, seed, index);
        let input = generate_input(&p, seed, 1);
        for tc in Toolchain::ALL {
            let dev = Device::new(match tc {
                Toolchain::Nvcc => DeviceKind::NvidiaLike,
                Toolchain::Hipcc => DeviceKind::AmdLike,
            });
            let r1 = execute(&compile(&p, tc, OptLevel::O1, false), &dev, &input);
            let r2 = execute(&compile(&p, tc, OptLevel::O2, false), &dev, &input);
            let r3 = execute(&compile(&p, tc, OptLevel::O3, false), &dev, &input);
            if let (Ok(r1), Ok(r2), Ok(r3)) = (r1, r2, r3) {
                prop_assert!(r1.value.bit_eq(&r2.value));
                prop_assert!(r1.value.bit_eq(&r3.value));
            }
        }
    }
}
