//! SIMT-extension integration tests: `threadIdx.x` through generation,
//! emission, parsing, compilation and per-thread differential execution.

use gpu_numerics::difftest::compare::compare_grids;
use gpu_numerics::gpucc::interp::{execute, execute_grid, ExecValue};
use gpu_numerics::gpucc::pipeline::{compile, OptLevel, Toolchain};
use gpu_numerics::gpusim::{Device, DeviceKind};
use gpu_numerics::progen::emit::emit_kernel;
use gpu_numerics::progen::gen::generate_program;
use gpu_numerics::progen::grammar::GenConfig;
use gpu_numerics::progen::inputs::{generate_input, generate_inputs, InputSet, InputValue};
use gpu_numerics::progen::parser::parse_kernel;
use gpu_numerics::progen::Precision;

fn threaded_cfg() -> GenConfig {
    GenConfig { threaded: true, ..GenConfig::varity_default(Precision::F64) }
}

#[test]
fn threaded_programs_roundtrip_through_source() {
    let cfg = threaded_cfg();
    let mut saw_tid = false;
    for i in 0..60 {
        let p = generate_program(&cfg, 123, i);
        let src = emit_kernel(&p);
        if src.contains("threadIdx.x") {
            saw_tid = true;
            assert!(src.contains("((double)threadIdx.x)"), "{src}");
        }
        let back = parse_kernel(&src, &p.id).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(back, p, "program {i}\n{src}");
    }
    assert!(saw_tid, "no program used threadIdx.x in 60 samples");
}

#[test]
fn hand_written_thread_kernel_parses_both_cast_and_bare_forms() {
    let src = "__global__ void compute(double comp) {\n\
               comp += ((double)threadIdx.x) * 2.0;\n\
               comp -= threadIdx.x;\n}";
    let p = parse_kernel(src, "t").unwrap();
    let ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
    let dev = Device::new(DeviceKind::NvidiaLike);
    let input = InputSet { values: vec![InputValue::Float(0.0)] };
    let results = execute_grid(&ir, &dev, &input, 4).unwrap();
    // comp = tid*2 - tid = tid
    for (tid, r) in results.iter().enumerate() {
        assert_eq!(r.value, ExecValue::F64(tid as f64), "thread {tid}");
    }
}

#[test]
fn single_thread_execution_is_thread_zero() {
    let cfg = threaded_cfg();
    let dev = Device::new(DeviceKind::NvidiaLike);
    for i in 0..20 {
        let p = generate_program(&cfg, 9, i);
        let input = generate_input(&p, 9, 0);
        let ir = compile(&p, Toolchain::Nvcc, OptLevel::O3, false);
        let single = execute(&ir, &dev, &input).unwrap();
        let grid = execute_grid(&ir, &dev, &input, 3).unwrap();
        assert!(single.value.bit_eq(&grid[0].value), "program {i}");
    }
}

#[test]
fn unthreaded_kernels_are_thread_uniform() {
    let cfg = GenConfig::varity_default(Precision::F64);
    let dev = Device::new(DeviceKind::AmdLike);
    let p = generate_program(&cfg, 4, 0);
    let input = generate_input(&p, 4, 0);
    let ir = compile(&p, Toolchain::Hipcc, OptLevel::O0, false);
    let grid = execute_grid(&ir, &dev, &input, 8).unwrap();
    for r in &grid[1..] {
        assert!(r.value.bit_eq(&grid[0].value));
    }
}

#[test]
fn per_thread_divergence_is_localized() {
    // fmod(var_2·(1 + tid·1e18), var_3): thread 0's operand ratio stays
    // below the 2^53 exact/chunked fmod boundary; every other thread
    // crosses it — so divergence is thread-local
    let src = "__global__ void compute(double comp, double var_2, double var_3) {\n\
               comp += fmod(var_2 * (1.0 + ((double)threadIdx.x) * 1.0E18), var_3);\n}";
    let p = parse_kernel(src, "simt").unwrap();
    let nv_ir = compile(&p, Toolchain::Nvcc, OptLevel::O0, false);
    let amd_ir = compile(&p, Toolchain::Hipcc, OptLevel::O0, false);
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let input = InputSet {
        values: vec![InputValue::Float(0.0), InputValue::Float(1.0e12), InputValue::Float(0.37)],
    };
    let rn: Vec<ExecValue> =
        execute_grid(&nv_ir, &nv, &input, 16).unwrap().into_iter().map(|r| r.value).collect();
    let ra: Vec<ExecValue> =
        execute_grid(&amd_ir, &amd, &input, 16).unwrap().into_iter().map(|r| r.value).collect();
    let diverging = compare_grids(&rn, &ra).expect("equal block sizes");
    assert!(!diverging.is_empty(), "extreme-ratio fmod must diverge somewhere");
    assert!(diverging.len() < 16, "but not on every thread: {}", diverging.len());
    assert!(
        diverging.iter().all(|d| d.thread != 0),
        "thread 0 stays below the 2^53 boundary: {diverging:?}"
    );
}

#[test]
fn threaded_campaign_style_sweep_executes_cleanly() {
    let cfg = threaded_cfg();
    let nv = Device::new(DeviceKind::NvidiaLike);
    let amd = Device::new(DeviceKind::AmdLike);
    let mut diverging_threads = 0usize;
    for i in 0..40 {
        let p = generate_program(&cfg, 777, i);
        let inputs = generate_inputs(&p, 777, 3);
        for level in [OptLevel::O0, OptLevel::O3Fm] {
            let nv_ir = compile(&p, Toolchain::Nvcc, level, false);
            let amd_ir = compile(&p, Toolchain::Hipcc, level, false);
            for input in &inputs {
                let rn = execute_grid(&nv_ir, &nv, input, 4).unwrap();
                let ra = execute_grid(&amd_ir, &amd, input, 4).unwrap();
                let vn: Vec<ExecValue> = rn.into_iter().map(|r| r.value).collect();
                let va: Vec<ExecValue> = ra.into_iter().map(|r| r.value).collect();
                diverging_threads += compare_grids(&vn, &va).expect("equal block sizes").len();
            }
        }
    }
    // sanity only: the sweep must complete without exec errors; divergence
    // count is data-dependent
    let _ = diverging_threads;
}
